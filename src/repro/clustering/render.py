"""Plain-text dendrogram rendering.

The third party publishes membership lists, but operators inspecting a
session (or example scripts) benefit from seeing the merge tree.  This
renderer draws a horizontal dendrogram with unicode box characters,
leaves sorted in dendrogram traversal order so branches never cross.
"""

from __future__ import annotations

from typing import Sequence

from repro.clustering.dendrogram import Dendrogram
from repro.exceptions import ClusteringError


def _leaf_order(dendrogram: Dendrogram) -> list[int]:
    """Left-to-right leaf order from a depth-first walk of the tree."""
    n = dendrogram.num_leaves
    children: dict[int, tuple[int, int]] = {}
    for step, merge in enumerate(dendrogram.merges):
        children[n + step] = (merge.left, merge.right)
    root = n + len(dendrogram.merges) - 1 if dendrogram.merges else 0
    order: list[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node < n:
            order.append(node)
        else:
            left, right = children[node]
            stack.append(right)
            stack.append(left)
    return order


def render_dendrogram(
    dendrogram: Dendrogram,
    labels: Sequence[str] | None = None,
    width: int = 60,
) -> str:
    """Render the merge tree as text, one leaf per line.

    Each leaf line shows the label followed by a bar whose length is
    proportional to the height at which the leaf's cluster last merged;
    shared prefixes indicate shared subtrees.  Compact and terminal
    friendly rather than typographically fancy.
    """
    n = dendrogram.num_leaves
    if labels is None:
        labels = [str(i) for i in range(n)]
    if len(labels) != n:
        raise ClusteringError(f"{len(labels)} labels for {n} leaves")
    if width < 10:
        raise ClusteringError("width must be at least 10 columns")
    if not dendrogram.merges:
        return f"{labels[0]}"

    top = dendrogram.merges[-1].height or 1.0
    # For each leaf, the sequence of merge heights on its path to the root.
    n_nodes = n + len(dendrogram.merges)
    parent = [-1] * n_nodes
    height_of = [0.0] * n_nodes
    for step, merge in enumerate(dendrogram.merges):
        node = n + step
        parent[merge.left] = node
        parent[merge.right] = node
        height_of[node] = merge.height

    label_width = max(len(str(l)) for l in labels)
    lines = []
    for leaf in _leaf_order(dendrogram):
        ticks = []
        node = leaf
        while parent[node] != -1:
            node = parent[node]
            column = int(round(height_of[node] / top * (width - 1)))
            ticks.append(min(width - 1, max(0, column)))
        bar = [" "] * width
        previous = 0
        for column in sorted(set(ticks)):
            for i in range(previous, column):
                bar[i] = "─"
            bar[column] = "┤"
            previous = column + 1
        lines.append(f"{str(labels[leaf]).ljust(label_width)} {''.join(bar).rstrip()}")
    scale = f"{' ' * (label_width + 1)}0{' ' * (width - len(f'{top:g}') - 2)}{top:g}"
    return "\n".join(lines + [scale])
