"""Cluster quality metrics.

Two families:

* **Internal** metrics computable from the dissimilarity matrix alone --
  what the third party may publish without extra leakage (Section 5:
  "The third party can also provide clustering quality parameters such
  as average of square distance between members").
* **External** metrics against ground-truth labels -- used only by the
  reproduction experiments to quantify the paper's zero-accuracy-loss
  claim; no protocol component reads ground truth.

Every metric here is a condensed-array formulation: per-pair cluster
labels are gathered once over the condensed vector and reduced with
``np.bincount`` / boolean masks, replacing the seed's nested Python
loops (preserved in :mod:`repro.clustering.reference`, which the
equivalence suite holds these to within 1e-9 -- exactly, for the
integer-valued pair counts).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distance.dissimilarity import (
    DissimilarityMatrix,
    condensed_pair_indices,
    condensed_unravel,
    same_label_mask,
)
from repro.exceptions import ClusteringError


def _validate_labels(matrix: DissimilarityMatrix | None, labels: Sequence[int]) -> list[int]:
    labels = list(labels)
    if matrix is not None and len(labels) != matrix.num_objects:
        raise ClusteringError(
            f"{len(labels)} labels for {matrix.num_objects} objects"
        )
    if not labels:
        raise ClusteringError("labels must be non-empty")
    return labels


def _pair_label_codes(
    matrix: DissimilarityMatrix, labels: list[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(sorted unique labels, per-object codes, per-pair row codes, col codes)."""
    unique, codes = np.unique(np.asarray(labels), return_inverse=True)
    i, j = condensed_pair_indices(matrix.num_objects)
    return unique, codes, codes[i], codes[j]


# -- internal metrics ---------------------------------------------------------


def average_square_distance(matrix: DissimilarityMatrix, labels: Sequence[int]) -> dict[int, float]:
    """Per-cluster average squared member distance (the Section 5 statistic).

    For each cluster, the mean of ``d(i, j)^2`` over distinct member pairs;
    singleton clusters report 0.0.
    """
    labels = _validate_labels(matrix, labels)
    values = matrix.store.array_view()
    if values is not None:
        unique, _, row_codes, col_codes = _pair_label_codes(matrix, labels)
        same = row_codes == col_codes
        cluster_of_pair = row_codes[same]
        sums = np.bincount(
            cluster_of_pair, weights=values[same] ** 2, minlength=unique.size
        )
        counts = np.bincount(cluster_of_pair, minlength=unique.size)
    else:
        # Streamed: np.add.at into one accumulator over ascending blocks
        # adds per-cluster terms in the same order as the full bincount,
        # so this published statistic stays bit-identical on float64
        # sharded backends.
        unique, codes = np.unique(np.asarray(labels), return_inverse=True)
        sums = np.zeros(unique.size, dtype=np.float64)
        counts = np.zeros(unique.size, dtype=np.int64)
        for start, stop in matrix.store.block_ranges():
            i, j = condensed_unravel(np.arange(start, stop, dtype=np.int64))
            row_codes, col_codes = codes[i], codes[j]
            same = row_codes == col_codes
            cluster_of_pair = row_codes[same]
            np.add.at(
                sums, cluster_of_pair, matrix.store.read(start, stop)[same] ** 2
            )
            counts += np.bincount(cluster_of_pair, minlength=unique.size)
    return {
        int(cluster): (float(total / count) if count else 0.0)
        for cluster, total, count in zip(unique, sums, counts)
    }


def silhouette_score(matrix: DissimilarityMatrix, labels: Sequence[int]) -> float:
    """Mean silhouette coefficient computed from dissimilarities.

    Requires at least two clusters and returns a value in [-1, 1]; objects
    in singleton clusters contribute 0 by the standard convention.
    """
    labels = _validate_labels(matrix, labels)
    unique, codes = np.unique(np.asarray(labels), return_inverse=True)
    k = unique.size
    if k < 2:
        raise ClusteringError("silhouette requires at least two clusters")
    n = matrix.num_objects
    values = matrix.store.array_view()
    if values is not None:
        i, j = condensed_pair_indices(n)
        row_codes, col_codes = codes[i], codes[j]
        # cluster_sums[p, c]: total distance from object p to cluster c's members.
        cluster_sums = (
            np.bincount(i * k + col_codes, weights=values, minlength=n * k)
            + np.bincount(j * k + row_codes, weights=values, minlength=n * k)
        ).reshape(n, k)
    else:
        # Streamed twin of the bincount pair: same accumulators, same
        # addend order (ascending condensed positions), bit-identical.
        row_sums = np.zeros(n * k, dtype=np.float64)
        col_sums = np.zeros(n * k, dtype=np.float64)
        for start, stop in matrix.store.block_ranges():
            i, j = condensed_unravel(np.arange(start, stop, dtype=np.int64))
            block = matrix.store.read(start, stop)
            np.add.at(row_sums, i * k + codes[j], block)
            np.add.at(col_sums, j * k + codes[i], block)
        cluster_sums = (row_sums + col_sums).reshape(n, k)
    counts = np.bincount(codes, minlength=k)
    objects = np.arange(n)
    own_count = counts[codes]
    a = cluster_sums[objects, codes] / np.maximum(own_count - 1, 1)
    others = cluster_sums / counts[None, :]
    others[objects, codes] = np.inf
    b = others.min(axis=1)
    denom = np.maximum(a, b)
    scores = np.where(
        (own_count > 1) & (denom > 0),
        (b - a) / np.where(denom > 0, denom, 1.0),
        0.0,
    )
    return float(scores.mean())


def dunn_index(matrix: DissimilarityMatrix, labels: Sequence[int]) -> float:
    """Dunn index: min inter-cluster distance / max intra-cluster diameter.

    Higher is better; undefined (raises) for fewer than two clusters or
    when every cluster is a singleton (zero diameter -- we return inf
    then, the conventional limit).
    """
    labels = _validate_labels(matrix, labels)
    arr = np.asarray(labels)
    if np.unique(arr).size < 2:
        raise ClusteringError("Dunn index requires at least two clusters")
    values = matrix.store.array_view()
    if values is not None:
        same = same_label_mask(arr)
        within = values[same]
        max_within = float(within.max()) if within.size else 0.0
        if max_within == 0.0:
            return float("inf")
        return float(values[~same].min()) / max_within
    # Streamed: min/max are exactly associative, so block-wise extrema
    # reproduce the dense answer bit-for-bit.
    max_within = -np.inf
    min_between = np.inf
    for start, stop in matrix.store.block_ranges():
        i, j = condensed_unravel(np.arange(start, stop, dtype=np.int64))
        same = arr[i] == arr[j]
        block = matrix.store.read(start, stop)
        if np.any(same):
            max_within = max(max_within, float(block[same].max()))
        if not np.all(same):
            min_between = min(min_between, float(block[~same].min()))
    if max_within <= 0.0:
        return float("inf")
    return min_between / max_within


def cophenetic_correlation(matrix: DissimilarityMatrix, dendrogram) -> float:
    """Pearson correlation between original and cophenetic distances.

    The classic goodness-of-fit statistic for a dendrogram against the
    matrix it was built from; near 1 means the tree faithfully encodes
    the distances.  Another quality figure the TP can publish without
    leaking pairwise values.  Both distance vectors stay condensed; no
    square matrix is materialised.
    """
    if dendrogram.num_leaves != matrix.num_objects:
        raise ClusteringError("dendrogram and matrix disagree on object count")
    n = matrix.num_objects
    if n < 3:
        raise ClusteringError("cophenetic correlation needs >= 3 objects")
    original = matrix.condensed
    tree = dendrogram.cophenetic_condensed()
    if original.std() == 0 or tree.std() == 0:
        raise ClusteringError("degenerate distances: correlation undefined")
    return float(np.corrcoef(original, tree)[0, 1])


# -- external metrics ---------------------------------------------------------


def _contingency(
    truth: Sequence[int], predicted: Sequence[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contingency counts and row/column marginals via one bincount."""
    if len(truth) != len(predicted):
        raise ClusteringError("label vectors must have equal length")
    truth_codes = np.unique(np.asarray(truth), return_inverse=True)[1]
    pred_codes = np.unique(np.asarray(predicted), return_inverse=True)[1]
    num_pred = int(pred_codes.max()) + 1 if pred_codes.size else 0
    num_truth = int(truth_codes.max()) + 1 if truth_codes.size else 0
    cells = np.bincount(
        truth_codes * num_pred + pred_codes, minlength=num_truth * num_pred
    ).reshape(num_truth, num_pred)
    return cells, cells.sum(axis=1), cells.sum(axis=0)


def _pairs(counts: np.ndarray) -> int:
    """Total same-group pairs, sum of C(c, 2) in exact integer math."""
    counts = counts.astype(np.int64, copy=False)
    return int((counts * (counts - 1) // 2).sum())


def _pair_counts(truth: Sequence[int], predicted: Sequence[int]) -> tuple[int, int, int, int]:
    """(both-same, truth-same-only, pred-same-only, both-different) pair counts."""
    cells, rows, cols = _contingency(truth, predicted)
    n = len(truth)
    ss = _pairs(cells.ravel())
    sd = _pairs(rows) - ss
    ds = _pairs(cols) - ss
    dd = n * (n - 1) // 2 - ss - sd - ds
    return ss, sd, ds, dd


def rand_index(truth: Sequence[int], predicted: Sequence[int]) -> float:
    """Fraction of object pairs on which the two partitions agree."""
    ss, sd, ds, dd = _pair_counts(truth, predicted)
    total = ss + sd + ds + dd
    if total == 0:
        return 1.0
    return (ss + dd) / total


def adjusted_rand_index(truth: Sequence[int], predicted: Sequence[int]) -> float:
    """Rand index adjusted for chance (1.0 iff identical partitions)."""
    cells, rows, cols = _contingency(truth, predicted)
    n = len(truth)
    if n == 0:
        raise ClusteringError("labels must be non-empty")
    sum_cells = _pairs(cells.ravel())
    sum_rows = _pairs(rows)
    sum_cols = _pairs(cols)
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        return 1.0
    expected = sum_rows * sum_cols / total_pairs
    maximum = (sum_rows + sum_cols) / 2
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)


def purity(truth: Sequence[int], predicted: Sequence[int]) -> float:
    """Fraction of objects whose cluster's majority truth label matches theirs."""
    cells, _, _ = _contingency(truth, predicted)
    if not len(truth):
        raise ClusteringError("labels must be non-empty")
    return int(cells.max(axis=0).sum()) / len(truth)
