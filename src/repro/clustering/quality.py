"""Cluster quality metrics.

Two families:

* **Internal** metrics computable from the dissimilarity matrix alone --
  what the third party may publish without extra leakage (Section 5:
  "The third party can also provide clustering quality parameters such
  as average of square distance between members").
* **External** metrics against ground-truth labels -- used only by the
  reproduction experiments to quantify the paper's zero-accuracy-loss
  claim; no protocol component reads ground truth.
"""

from __future__ import annotations

from collections import Counter
from math import comb
from typing import Sequence

import numpy as np

from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ClusteringError


def _validate_labels(matrix: DissimilarityMatrix | None, labels: Sequence[int]) -> list[int]:
    labels = list(labels)
    if matrix is not None and len(labels) != matrix.num_objects:
        raise ClusteringError(
            f"{len(labels)} labels for {matrix.num_objects} objects"
        )
    if not labels:
        raise ClusteringError("labels must be non-empty")
    return labels


# -- internal metrics ---------------------------------------------------------


def average_square_distance(matrix: DissimilarityMatrix, labels: Sequence[int]) -> dict[int, float]:
    """Per-cluster average squared member distance (the Section 5 statistic).

    For each cluster, the mean of ``d(i, j)^2`` over distinct member pairs;
    singleton clusters report 0.0.
    """
    labels = _validate_labels(matrix, labels)
    result: dict[int, float] = {}
    for cluster in sorted(set(labels)):
        members = [i for i, l in enumerate(labels) if l == cluster]
        if len(members) < 2:
            result[cluster] = 0.0
            continue
        total = 0.0
        count = 0
        for a_idx, i in enumerate(members):
            for j in members[:a_idx]:
                total += matrix[i, j] ** 2
                count += 1
        result[cluster] = total / count
    return result


def silhouette_score(matrix: DissimilarityMatrix, labels: Sequence[int]) -> float:
    """Mean silhouette coefficient computed from dissimilarities.

    Requires at least two clusters and returns a value in [-1, 1]; objects
    in singleton clusters contribute 0 by the standard convention.
    """
    labels = _validate_labels(matrix, labels)
    clusters = sorted(set(labels))
    if len(clusters) < 2:
        raise ClusteringError("silhouette requires at least two clusters")
    square = matrix.to_square()
    labels_arr = np.asarray(labels)
    scores = np.zeros(len(labels))
    for i in range(len(labels)):
        own = labels_arr == labels_arr[i]
        own[i] = False
        if not own.any():
            scores[i] = 0.0
            continue
        a = square[i, own].mean()
        b = np.inf
        for cluster in clusters:
            if cluster == labels_arr[i]:
                continue
            other = labels_arr == cluster
            b = min(b, square[i, other].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def dunn_index(matrix: DissimilarityMatrix, labels: Sequence[int]) -> float:
    """Dunn index: min inter-cluster distance / max intra-cluster diameter.

    Higher is better; undefined (raises) for fewer than two clusters or
    when every cluster is a singleton (zero diameter -- we return inf
    then, the conventional limit).
    """
    labels = _validate_labels(matrix, labels)
    clusters = sorted(set(labels))
    if len(clusters) < 2:
        raise ClusteringError("Dunn index requires at least two clusters")
    square = matrix.to_square()
    labels_arr = np.asarray(labels)
    min_between = np.inf
    max_within = 0.0
    for ci_idx, ci in enumerate(clusters):
        members_i = labels_arr == ci
        block = square[np.ix_(members_i, members_i)]
        if block.size > 1:
            max_within = max(max_within, float(block.max()))
        for cj in clusters[ci_idx + 1 :]:
            members_j = labels_arr == cj
            min_between = min(
                min_between, float(square[np.ix_(members_i, members_j)].min())
            )
    if max_within == 0.0:
        return float("inf")
    return min_between / max_within


def cophenetic_correlation(matrix: DissimilarityMatrix, dendrogram) -> float:
    """Pearson correlation between original and cophenetic distances.

    The classic goodness-of-fit statistic for a dendrogram against the
    matrix it was built from; near 1 means the tree faithfully encodes
    the distances.  Another quality figure the TP can publish without
    leaking pairwise values.
    """
    if dendrogram.num_leaves != matrix.num_objects:
        raise ClusteringError("dendrogram and matrix disagree on object count")
    n = matrix.num_objects
    if n < 3:
        raise ClusteringError("cophenetic correlation needs >= 3 objects")
    coph = dendrogram.cophenetic_matrix()
    original = []
    tree = []
    for i in range(1, n):
        for j in range(i):
            original.append(matrix[i, j])
            tree.append(coph[i, j])
    original_arr = np.asarray(original)
    tree_arr = np.asarray(tree)
    if original_arr.std() == 0 or tree_arr.std() == 0:
        raise ClusteringError("degenerate distances: correlation undefined")
    return float(np.corrcoef(original_arr, tree_arr)[0, 1])


# -- external metrics ---------------------------------------------------------


def _pair_counts(truth: Sequence[int], predicted: Sequence[int]) -> tuple[int, int, int, int]:
    """(both-same, truth-same-only, pred-same-only, both-different) pair counts."""
    if len(truth) != len(predicted):
        raise ClusteringError("label vectors must have equal length")
    n = len(truth)
    ss = sd = ds = dd = 0
    for i in range(n):
        for j in range(i):
            same_truth = truth[i] == truth[j]
            same_pred = predicted[i] == predicted[j]
            if same_truth and same_pred:
                ss += 1
            elif same_truth:
                sd += 1
            elif same_pred:
                ds += 1
            else:
                dd += 1
    return ss, sd, ds, dd


def rand_index(truth: Sequence[int], predicted: Sequence[int]) -> float:
    """Fraction of object pairs on which the two partitions agree."""
    ss, sd, ds, dd = _pair_counts(truth, predicted)
    total = ss + sd + ds + dd
    if total == 0:
        return 1.0
    return (ss + dd) / total


def adjusted_rand_index(truth: Sequence[int], predicted: Sequence[int]) -> float:
    """Rand index adjusted for chance (1.0 iff identical partitions)."""
    if len(truth) != len(predicted):
        raise ClusteringError("label vectors must have equal length")
    n = len(truth)
    if n == 0:
        raise ClusteringError("labels must be non-empty")
    contingency: Counter[tuple[int, int]] = Counter(zip(truth, predicted))
    sum_cells = sum(comb(c, 2) for c in contingency.values())
    sum_rows = sum(comb(c, 2) for c in Counter(truth).values())
    sum_cols = sum(comb(c, 2) for c in Counter(predicted).values())
    total_pairs = comb(n, 2)
    if total_pairs == 0:
        return 1.0
    expected = sum_rows * sum_cols / total_pairs
    maximum = (sum_rows + sum_cols) / 2
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)


def purity(truth: Sequence[int], predicted: Sequence[int]) -> float:
    """Fraction of objects whose cluster's majority truth label matches theirs."""
    if len(truth) != len(predicted):
        raise ClusteringError("label vectors must have equal length")
    if not truth:
        raise ClusteringError("labels must be non-empty")
    correct = 0
    for cluster in set(predicted):
        members = [truth[i] for i in range(len(truth)) if predicted[i] == cluster]
        correct += Counter(members).most_common(1)[0][1]
    return correct / len(truth)
