"""Pairwise key agreement and key derivation.

The paper assumes each pair of parties "shares a secret number" used as a
PRNG seed (Section 4.1) and that data holders "share a secret key to
encrypt their data" (Section 4.3).  This module supplies the mechanism a
real deployment would use to establish those secrets: classic finite-field
Diffie-Hellman over the RFC 3526 2048-bit MODP group, followed by
HKDF-style derivation of purpose-bound seeds and keys.

Derivation is *labelled*: the same DH secret yields independent seeds for
``rng_JK``-style generators, channel encryption keys and deterministic
encryption keys, so no stream is ever reused across purposes.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from repro.crypto.prng import ReseedablePRNG, SeedLike, _seed_to_bytes, make_prng
from repro.exceptions import KeyAgreementError

#: RFC 3526 group 14 (2048-bit MODP) prime.  Generator is 2.
RFC3526_PRIME_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
RFC3526_GENERATOR = 2

_HASH = hashlib.sha256


def _hkdf_extract_expand(secret: bytes, label: str, length: int = 32) -> bytes:
    """Single-block HKDF (extract-then-expand) with a string ``info`` label."""
    if length > 32 * 255:
        raise KeyAgreementError("requested HKDF output too long")
    prk = hmac.new(b"repro.kdf.salt", secret, _HASH).digest()
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            prk, previous + label.encode("utf-8") + bytes([counter]), _HASH
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def derive_seed(secret: bytes, label: str) -> bytes:
    """Derive a 32-byte PRNG seed bound to ``label`` from a shared secret."""
    return _hkdf_extract_expand(secret, "seed|" + label)


def derive_key(secret: bytes, label: str, length: int = 32) -> bytes:
    """Derive a symmetric key of ``length`` bytes bound to ``label``."""
    return _hkdf_extract_expand(secret, "key|" + label, length)


class DiffieHellman:
    """One party's half of a finite-field Diffie-Hellman exchange.

    The private exponent is drawn from a caller-supplied seeded PRNG so
    simulations are reproducible; a deployment would seed from the OS.

    Example
    -------
    >>> from repro.crypto.prng import make_prng
    >>> a = DiffieHellman(make_prng(b"alice-entropy"))
    >>> b = DiffieHellman(make_prng(b"bob-entropy"))
    >>> a.shared_secret(b.public_value) == b.shared_secret(a.public_value)
    True
    """

    def __init__(
        self,
        entropy: ReseedablePRNG,
        prime: int = RFC3526_PRIME_2048,
        generator: int = RFC3526_GENERATOR,
    ) -> None:
        if prime < 5:
            raise KeyAgreementError("DH prime too small")
        self._prime = prime
        self._generator = generator
        # 256-bit exponents suffice for a 2048-bit group at the ~128-bit level.
        self._private = 2 + entropy.next_bits(256) % (prime - 3)
        self._public = pow(generator, self._private, prime)

    @property
    def public_value(self) -> int:
        """The value this party publishes."""
        return self._public

    @property
    def prime(self) -> int:
        return self._prime

    def shared_secret(self, peer_public: int) -> bytes:
        """Complete the exchange; returns the hashed shared secret.

        Rejects degenerate peer values (0, 1, p-1 and out-of-range), which
        would otherwise force the secret into a tiny subgroup.
        """
        if not 2 <= peer_public <= self._prime - 2:
            raise KeyAgreementError("peer public value out of range")
        raw = pow(peer_public, self._private, self._prime)
        if raw in (1, self._prime - 1):
            raise KeyAgreementError("degenerate DH shared secret")
        size = (self._prime.bit_length() + 7) // 8
        return _HASH(b"repro.dh|" + raw.to_bytes(size, "big")).digest()


@dataclass(frozen=True)
class PairwiseSecret:
    """A shared secret between two named parties plus derivation helpers.

    This is the object the protocol layer passes around: given the secret
    established between sites J and K it can mint the ``rng_JK`` generator,
    and given the secret between J and the third party it mints ``rng_JT``.
    The ``pair`` is stored in sorted order so both endpoints derive
    identical material regardless of who initiated.
    """

    pair: tuple[str, str]
    secret: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.pair) != 2 or self.pair[0] == self.pair[1]:
            raise KeyAgreementError(f"invalid party pair: {self.pair}")
        if self.pair[0] > self.pair[1]:
            object.__setattr__(self, "pair", (self.pair[1], self.pair[0]))

    def prng(self, label: str, kind: str | None = None) -> ReseedablePRNG:
        """Shared generator bound to ``label`` (e.g. an attribute name)."""
        seed = derive_seed(self.secret, f"{self.pair[0]}|{self.pair[1]}|{label}")
        if kind is None:
            return make_prng(seed)
        return make_prng(seed, kind)

    def key(self, label: str, length: int = 32) -> bytes:
        """Shared symmetric key bound to ``label``."""
        return derive_key(self.secret, f"{self.pair[0]}|{self.pair[1]}|{label}", length)


def agree_pairwise(
    names_and_entropy: dict[str, ReseedablePRNG],
) -> dict[tuple[str, str], PairwiseSecret]:
    """Run DH between every pair of parties and return all pairwise secrets.

    Convenience for session setup: takes ``{party_name: entropy_prng}`` and
    returns ``{(a, b): PairwiseSecret}`` for every unordered pair with
    ``a < b``.
    """
    names = sorted(names_and_entropy)
    if len(names) < 2:
        raise KeyAgreementError("need at least two parties for key agreement")
    halves = {name: DiffieHellman(names_and_entropy[name]) for name in names}
    secrets: dict[tuple[str, str], PairwiseSecret] = {}
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            shared = halves[a].shared_secret(halves[b].public_value)
            check = halves[b].shared_secret(halves[a].public_value)
            if shared != check:
                raise KeyAgreementError(f"DH mismatch between {a} and {b}")
            secrets[(a, b)] = PairwiseSecret(pair=(a, b), secret=shared)
    return secrets


def fresh_group_key(entropy: ReseedablePRNG) -> bytes:
    """Draw a fresh 256-bit symmetric key from a derivation-rooted PRNG.

    Key material is packed to bytes here, inside the crypto layer, so
    party code never performs raw byte conversion itself (the wire codec
    and crypto/ are the only modules allowed to produce byte strings).
    """
    return entropy.next_bits(256).to_bytes(32, "big")


def secret_from_passphrase(pair: tuple[str, str], passphrase: SeedLike) -> PairwiseSecret:
    """Build a :class:`PairwiseSecret` directly from out-of-band material.

    The paper simply states the parties "share a secret number"; this
    helper models that configuration without running DH.
    """
    return PairwiseSecret(pair=pair, secret=_seed_to_bytes(passphrase, "passphrase"))
