"""Cryptographic substrate for the privacy-preserving protocols.

The paper assumes the availability of (a) high-quality seeded pseudo-random
number generators shared pairwise between parties, (b) secured channels, and
(c) a shared-key encryption scheme for categorical attributes.  This package
provides all three from scratch, plus a Paillier cryptosystem used by the
Atallah et al. [8] baseline protocol:

* :mod:`repro.crypto.prng` -- re-seedable PRNGs with the exact reset
  semantics the protocols rely on,
* :mod:`repro.crypto.keys` -- finite-field Diffie-Hellman pairwise key
  agreement and seed/key derivation,
* :mod:`repro.crypto.sym` -- symmetric authenticated encryption for secure
  channels,
* :mod:`repro.crypto.detenc` -- deterministic encryption for categorical
  equality comparison,
* :mod:`repro.crypto.paillier` -- additively homomorphic Paillier
  cryptosystem,
* :mod:`repro.crypto.numbers` -- number-theoretic helpers.
"""

from repro.crypto.detenc import DeterministicEncryptor
from repro.crypto.keys import DiffieHellman, PairwiseSecret, derive_seed, derive_key
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierKeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.crypto.prng import (
    HashDRBG,
    Lcg64,
    ReseedablePRNG,
    XorShift64Star,
    make_prng,
)
from repro.crypto.sym import SymmetricCipher, seal, open_sealed

__all__ = [
    "DeterministicEncryptor",
    "DiffieHellman",
    "PairwiseSecret",
    "derive_seed",
    "derive_key",
    "PaillierCiphertext",
    "PaillierKeyPair",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_paillier_keypair",
    "HashDRBG",
    "Lcg64",
    "ReseedablePRNG",
    "XorShift64Star",
    "make_prng",
    "SymmetricCipher",
    "seal",
    "open_sealed",
]
