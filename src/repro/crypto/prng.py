"""Re-seedable pseudo-random number generators.

The paper's comparison protocols (Sections 4.1 and 4.2) are built on two
pairwise *shared-seed* generators: ``rng_JK`` between the two data holders
and ``rng_JT`` between the initiating data holder and the third party.
Correctness of the protocols depends on two properties that ordinary
``random.Random`` style APIs do not make explicit:

1. **Exact stream alignment** -- two parties seeded with the same secret
   must draw byte-identical streams, and
2. **Exact reseeding** -- the pseudocode re-initialises a generator with
   its original seed at every row boundary (Figures 5, 6, 8, 10);
   :meth:`ReseedablePRNG.reset` restores the generator to its precise
   post-construction state, including any internal buffering.

Three generators are provided:

* :class:`HashDRBG` -- SHA-256 in counter mode.  This is the default and
  the one that satisfies the paper's assumption of "a high quality
  pseudo-random number generator, that has a long period and that is not
  predictable" (Section 4.1) in the semi-honest model.
* :class:`XorShift64Star` -- fast non-cryptographic generator, useful in
  tests and large benchmark sweeps.
* :class:`Lcg64` -- classic MMIX linear congruential generator.  Its low
  bits are famously weak (the lowest bit alternates with period 2), which
  is exactly why the protocol implementations never consume raw parity:
  :meth:`ReseedablePRNG.next_bits` serves the *most significant* bits.

A note on paper fidelity: the pseudocode writes ``rngJK.Next() % 2`` for
the sign decision.  Taken literally with an LCG that expression is a
deterministic alternation; we read the decision bit from the top of the
word instead, which preserves the protocol (both sharers of the seed
compute the same bit) while remaining sound for every generator here.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Callable, ClassVar, Union

from repro.exceptions import ConfigurationError, CryptoError

SeedLike = Union[int, bytes, str]

_MASK64 = (1 << 64) - 1


def _seed_to_bytes(seed: SeedLike, domain: str) -> bytes:
    """Normalise any supported seed into 32 bytes, domain-separated.

    Domain separation guarantees that e.g. an :class:`Lcg64` and a
    :class:`HashDRBG` constructed from the same shared secret do not leak
    correlated streams.
    """
    if isinstance(seed, int):
        if seed < 0:
            raw = b"-" + abs(seed).to_bytes((abs(seed).bit_length() + 7) // 8 or 1, "big")
        else:
            raw = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big")
    elif isinstance(seed, bytes):
        raw = seed
    elif isinstance(seed, str):
        raw = seed.encode("utf-8")
    else:
        raise ConfigurationError(f"unsupported seed type: {type(seed).__name__}")
    return hashlib.sha256(b"repro.prng|" + domain.encode() + b"|" + raw).digest()


class ReseedablePRNG(abc.ABC):
    """Deterministic generator that can be restored to its seed state.

    Subclasses implement :meth:`_reseed` (derive internal state from the
    normalised seed bytes) and :meth:`next_uint64` (produce the next raw
    64-bit word).  Everything else -- top-bit extraction, unbiased range
    sampling, arbitrary-width integers -- is shared here.
    """

    name: ClassVar[str] = "abstract"

    def __init__(self, seed: SeedLike) -> None:
        self._seed = seed
        self._seed_bytes = _seed_to_bytes(seed, self.name)
        self._draws = 0
        self._reseed()

    @property
    def seed(self) -> SeedLike:
        """The seed this generator was constructed with."""
        return self._seed

    @property
    def draws(self) -> int:
        """Number of raw 64-bit words produced since the last reset."""
        return self._draws

    def reset(self) -> None:
        """Restore the exact post-construction state (paper's *re-initialise*)."""
        self._draws = 0
        self._reseed()

    @abc.abstractmethod
    def _reseed(self) -> None:
        """Derive the internal state from ``self._seed_bytes``."""

    @abc.abstractmethod
    def _next_word(self) -> int:
        """Produce the next raw 64-bit word."""

    def next_uint64(self) -> int:
        """Next raw 64-bit word as a non-negative int."""
        self._draws += 1
        return self._next_word()

    def next_bits(self, bits: int) -> int:
        """Uniform integer with exactly ``bits`` random bits.

        Bits are taken from the *top* of each 64-bit word because the top
        bits are the statistically strong ones for congruential
        generators.  Widths above 64 concatenate successive words; each
        word consumed counts as one draw, keeping cross-party stream
        alignment unambiguous.
        """
        if bits <= 0:
            raise ConfigurationError(f"bits must be positive, got {bits}")
        value = 0
        remaining = bits
        while remaining > 0:
            take = min(64, remaining)
            word = self.next_uint64() >> (64 - take)
            value = (value << take) | word
            remaining -= take
        return value

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via unbiased rejection sampling."""
        if bound <= 0:
            raise ConfigurationError(f"bound must be positive, got {bound}")
        if bound == 1:
            return 0
        bits = bound.bit_length()
        while True:
            candidate = self.next_bits(bits)
            if candidate < bound:
                return candidate

    def next_sign_bit(self) -> int:
        """Single decision bit (0 or 1); the protocol's ``Next() % 2``."""
        return self.next_bits(1)

    def rand_bits_callable(self) -> Callable[[int], int]:
        """Adapter matching the ``rand_bits(k)`` signature of
        :mod:`repro.crypto.numbers`."""
        return self.next_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(seed={self._seed!r}, draws={self._draws})"


class Lcg64(ReseedablePRNG):
    """MMIX linear congruential generator (Knuth's constants).

    Full 64-bit state transition ``s <- a*s + c mod 2^64``.  Exposed for
    benchmarking and as a worked example of *why* :meth:`next_bits` reads
    top bits: the k-th lowest bit of an LCG has period at most ``2^k``.
    """

    name: ClassVar[str] = "lcg64"

    _A = 6364136223846793005
    _C = 1442695040888963407

    def _reseed(self) -> None:
        self._state = int.from_bytes(self._seed_bytes[:8], "big")

    def _next_word(self) -> int:
        self._state = (self._A * self._state + self._C) & _MASK64
        return self._state


class XorShift64Star(ReseedablePRNG):
    """Marsaglia xorshift64* generator.

    Requires a non-zero state; the seed normalisation makes an all-zero
    state astronomically unlikely, but we guard anyway.
    """

    name: ClassVar[str] = "xorshift64star"

    _MULT = 2685821657736338717

    def _reseed(self) -> None:
        self._state = int.from_bytes(self._seed_bytes[8:16], "big") or 0x9E3779B97F4A7C15

    def _next_word(self) -> int:
        x = self._state
        x ^= x >> 12
        x = (x ^ (x << 25)) & _MASK64
        x ^= x >> 27
        self._state = x
        return (x * self._MULT) & _MASK64


class HashDRBG(ReseedablePRNG):
    """SHA-256 counter-mode deterministic random bit generator.

    Output block ``i`` is ``SHA-256(seed_bytes || i)``; blocks are buffered
    and served as 64-bit words.  Unpredictable without the seed under
    standard hash assumptions, with period far beyond any protocol run --
    this is the generator the paper's security analysis presumes.
    """

    name: ClassVar[str] = "hash_drbg"

    def _reseed(self) -> None:
        self._counter = 0
        self._buffer: list[int] = []

    def _refill(self) -> None:
        digest = hashlib.sha256(
            self._seed_bytes + self._counter.to_bytes(8, "big")
        ).digest()
        self._counter += 1
        self._buffer = [
            int.from_bytes(digest[off : off + 8], "big") for off in (24, 16, 8, 0)
        ]

    def _next_word(self) -> int:
        if not self._buffer:
            self._refill()
        return self._buffer.pop()


_KINDS: dict[str, type[ReseedablePRNG]] = {
    Lcg64.name: Lcg64,
    XorShift64Star.name: XorShift64Star,
    HashDRBG.name: HashDRBG,
}

#: Generator used when a protocol configuration does not name one.
DEFAULT_PRNG_KIND = HashDRBG.name


def make_prng(seed: SeedLike, kind: str = DEFAULT_PRNG_KIND) -> ReseedablePRNG:
    """Construct a generator by registry name (``hash_drbg`` by default)."""
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown PRNG kind {kind!r}; available: {sorted(_KINDS)}"
        ) from None
    return cls(seed)


def available_kinds() -> tuple[str, ...]:
    """Names accepted by :func:`make_prng`."""
    return tuple(sorted(_KINDS))
