"""Re-seedable pseudo-random number generators.

The paper's comparison protocols (Sections 4.1 and 4.2) are built on two
pairwise *shared-seed* generators: ``rng_JK`` between the two data holders
and ``rng_JT`` between the initiating data holder and the third party.
Correctness of the protocols depends on two properties that ordinary
``random.Random`` style APIs do not make explicit:

1. **Exact stream alignment** -- two parties seeded with the same secret
   must draw byte-identical streams, and
2. **Exact reseeding** -- the pseudocode re-initialises a generator with
   its original seed at every row boundary (Figures 5, 6, 8, 10);
   :meth:`ReseedablePRNG.reset` restores the generator to its precise
   post-construction state, including any internal buffering.

Three generators are provided:

* :class:`HashDRBG` -- SHA-256 in counter mode.  This is the default and
  the one that satisfies the paper's assumption of "a high quality
  pseudo-random number generator, that has a long period and that is not
  predictable" (Section 4.1) in the semi-honest model.
* :class:`XorShift64Star` -- fast non-cryptographic generator, useful in
  tests and large benchmark sweeps.
* :class:`Lcg64` -- classic MMIX linear congruential generator.  Its low
  bits are famously weak (the lowest bit alternates with period 2), which
  is exactly why the protocol implementations never consume raw parity:
  :meth:`ReseedablePRNG.next_bits` serves the *most significant* bits.

A note on paper fidelity: the pseudocode writes ``rngJK.Next() % 2`` for
the sign decision.  Taken literally with an LCG that expression is a
deterministic alternation; we read the decision bit from the top of the
word instead, which preserves the protocol (both sharers of the seed
compute the same bit) while remaining sound for every generator here.

Block draws
-----------
The vectorized protocol engine consumes randomness in blocks:
:meth:`ReseedablePRNG.next_words`, :meth:`~ReseedablePRNG.next_bits_block`,
:meth:`~ReseedablePRNG.next_sign_bits` and
:meth:`~ReseedablePRNG.next_below_block` return numpy arrays.  The hard
invariant -- property-tested over every generator kind -- is that a block
draw consumes the *identical word stream* as the corresponding sequence
of scalar draws: ``g.next_words(n)`` equals ``[g.next_uint64() for _ in
range(n)]`` drawn from the same state, and leaves ``draws`` and
:meth:`~ReseedablePRNG.reset` semantics unchanged.  Cross-party alignment
therefore never depends on whether a party drew scalar or blocked.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Any, Callable, ClassVar, Union

import numpy as np

from repro.exceptions import ConfigurationError, CryptoError

SeedLike = Union[int, bytes, str]

_MASK64 = (1 << 64) - 1


def _seed_to_bytes(seed: SeedLike, domain: str) -> bytes:
    """Normalise any supported seed into 32 bytes, domain-separated.

    Domain separation guarantees that e.g. an :class:`Lcg64` and a
    :class:`HashDRBG` constructed from the same shared secret do not leak
    correlated streams.  Seed *types* are domain-separated too: the hash
    input carries a type tag so that ``make_prng(97)``, ``make_prng(b"a")``
    and ``make_prng("a")`` (whose raw byte encodings coincide) emit
    unrelated streams.
    """
    if isinstance(seed, int):
        tag = b"i"
        if seed < 0:
            raw = b"-" + abs(seed).to_bytes((abs(seed).bit_length() + 7) // 8 or 1, "big")
        else:
            raw = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big")
    elif isinstance(seed, bytes):
        tag = b"b"
        raw = seed
    elif isinstance(seed, str):
        tag = b"s"
        raw = seed.encode("utf-8")
    else:
        raise ConfigurationError(f"unsupported seed type: {type(seed).__name__}")
    return hashlib.sha256(
        b"repro.prng|" + domain.encode() + b"|" + tag + b"|" + raw
    ).digest()


class ReseedablePRNG(abc.ABC):
    """Deterministic generator that can be restored to its seed state.

    Subclasses implement :meth:`_reseed` (derive internal state from the
    normalised seed bytes) and :meth:`_next_word` (produce the next raw
    64-bit word); they may additionally override :meth:`_next_words` with
    a native block implementation and must expose their internal state
    via :meth:`_get_state` / :meth:`_set_state` (used by the exact
    rejection-sampling rewind in :meth:`next_below_block`).  Everything
    else -- top-bit extraction, unbiased range sampling, arbitrary-width
    integers, block adapters -- is shared here.
    """

    name: ClassVar[str] = "abstract"

    def __init__(self, seed: SeedLike) -> None:
        self._seed = seed
        self._seed_bytes = _seed_to_bytes(seed, self.name)
        self._draws = 0
        self._reseed()

    @property
    def seed(self) -> SeedLike:
        """The seed this generator was constructed with."""
        return self._seed

    @property
    def draws(self) -> int:
        """Number of raw 64-bit words produced since the last reset."""
        return self._draws

    def reset(self) -> None:
        """Restore the exact post-construction state (paper's *re-initialise*)."""
        self._draws = 0
        self._reseed()

    @abc.abstractmethod
    def _reseed(self) -> None:
        """Derive the internal state from ``self._seed_bytes``."""

    @abc.abstractmethod
    def _next_word(self) -> int:
        """Produce the next raw 64-bit word."""

    @abc.abstractmethod
    def _get_state(self) -> Any:
        """Snapshot the internal state (for exact block-draw rewinds)."""

    @abc.abstractmethod
    def _set_state(self, state: Any) -> None:
        """Restore a state captured by :meth:`_get_state`."""

    def _next_words(self, count: int) -> np.ndarray:
        """Produce ``count`` raw words as ``uint64``; subclasses override
        with native block stepping."""
        return np.fromiter(
            (self._next_word() for _ in range(count)), dtype=np.uint64, count=count
        )

    # -- scalar draws -------------------------------------------------------

    def next_uint64(self) -> int:
        """Next raw 64-bit word as a non-negative int."""
        self._draws += 1
        return self._next_word()

    def next_bits(self, bits: int) -> int:
        """Uniform integer with exactly ``bits`` random bits.

        Bits are taken from the *top* of each 64-bit word because the top
        bits are the statistically strong ones for congruential
        generators.  Widths above 64 concatenate successive words; each
        word consumed counts as one draw, keeping cross-party stream
        alignment unambiguous.
        """
        if bits <= 0:
            raise ConfigurationError(f"bits must be positive, got {bits}")
        value = 0
        remaining = bits
        while remaining > 0:
            take = min(64, remaining)
            word = self.next_uint64() >> (64 - take)
            value = (value << take) | word
            remaining -= take
        return value

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via unbiased rejection sampling."""
        if bound <= 0:
            raise ConfigurationError(f"bound must be positive, got {bound}")
        if bound == 1:
            return 0
        bits = bound.bit_length()
        while True:
            candidate = self.next_bits(bits)
            if candidate < bound:
                return candidate

    def next_sign_bit(self) -> int:
        """Single decision bit (0 or 1); the protocol's ``Next() % 2``."""
        return self.next_bits(1)

    # -- block draws --------------------------------------------------------

    def next_words(self, count: int) -> np.ndarray:
        """Block of ``count`` raw words; identical stream to ``count``
        :meth:`next_uint64` calls."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.uint64)
        words = self._next_words(count)
        self._draws += count
        return words

    def next_bits_block(self, count: int, bits: int) -> np.ndarray:
        """Block of ``count`` values, each of exactly ``bits`` random bits.

        Equals ``[g.next_bits(bits) for _ in range(count)]`` drawn from
        the same state.  Returns a ``uint64`` array for widths up to 64;
        wider values come back as an object array of Python ints (the
        exact-arithmetic fallback the >64-bit mask configurations use).
        """
        if bits <= 0:
            raise ConfigurationError(f"bits must be positive, got {bits}")
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if bits <= 64:
            return self.next_words(count) >> np.uint64(64 - bits)
        words_per_value = (bits + 63) // 64
        words = self.next_words(count * words_per_value).reshape(
            count, words_per_value
        )
        values = [0] * count
        remaining = bits
        for column in range(words_per_value):
            take = min(64, remaining)
            remaining -= take
            chunk = (words[:, column] >> np.uint64(64 - take)).tolist()
            for i in range(count):
                values[i] = (values[i] << take) | chunk[i]
        out = np.empty(count, dtype=object)
        out[:] = values
        return out

    def next_sign_bits(self, count: int) -> np.ndarray:
        """Block of ``count`` decision bits (0/1, ``uint64``); identical
        stream to ``count`` :meth:`next_sign_bit` calls."""
        return self.next_words(count) >> np.uint64(63)

    def next_below_block(self, count: int, bound: int) -> np.ndarray:
        """Block of ``count`` uniform integers in ``[0, bound)``.

        Replays the exact scalar rejection-sampling word stream: candidates
        are drawn speculatively in chunks and the generator is rewound to
        consume precisely as many words as ``count`` scalar
        :meth:`next_below` calls would have.
        """
        if bound <= 0:
            raise ConfigurationError(f"bound must be positive, got {bound}")
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        out = np.zeros(count, dtype=np.int64)
        if bound == 1 or count == 0:
            return out
        bits = bound.bit_length()
        if bits > 63:
            # Wide bounds are outside the protocols' hot path; defer to the
            # scalar sampler (object array keeps arbitrary precision).
            wide = np.empty(count, dtype=object)
            wide[:] = [self.next_below(bound) for _ in range(count)]
            return wide
        accepted = 0
        shift = np.uint64(64 - bits)
        np_bound = np.uint64(bound)
        while accepted < count:
            need = count - accepted
            # Acceptance probability is >= 1/2; x2 plus slack makes a
            # second round rare without over-drawing wildly.
            chunk = 2 * need + 8
            state = self._get_state()
            draws = self._draws
            words = self.next_words(chunk)
            candidates = words >> shift
            ok = candidates < np_bound
            hits = int(ok.sum())
            if accepted + hits >= count:
                # Rewind, then consume exactly the words the scalar
                # sampler would have used for the final acceptance.
                cut = int(np.flatnonzero(ok)[need - 1]) + 1
                self._set_state(state)
                self._draws = draws
                self.next_words(cut)
                out[accepted:] = candidates[ok][:need].astype(np.int64)
                accepted = count
            else:
                out[accepted : accepted + hits] = candidates[ok].astype(np.int64)
                accepted += hits
        return out

    def rand_bits_callable(self) -> Callable[[int], int]:
        """Adapter matching the ``rand_bits(k)`` signature of
        :mod:`repro.crypto.numbers`."""
        return self.next_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # The seed is key material (pairwise streams derive from shared
        # secrets); a repr that printed it would leak through logs and
        # debugger output.  Structure only: type and draw count.
        return f"{type(self).__name__}(seed=<redacted>, draws={self._draws})"


class Lcg64(ReseedablePRNG):
    """MMIX linear congruential generator (Knuth's constants).

    Full 64-bit state transition ``s <- a*s + c mod 2^64``.  Exposed for
    benchmarking and as a worked example of *why* :meth:`next_bits` reads
    top bits: the k-th lowest bit of an LCG has period at most ``2^k``.
    Block draws unroll the recurrence in closed form --
    ``s_i = a^i s_0 + c (a^{i-1} + ... + 1)`` -- with numpy ``uint64``
    cumulative products/sums (which wrap mod 2^64 exactly like the
    scalar transition).
    """

    name: ClassVar[str] = "lcg64"

    _A = 6364136223846793005
    _C = 1442695040888963407

    def _reseed(self) -> None:
        self._state = int.from_bytes(self._seed_bytes[:8], "big")

    def _get_state(self) -> int:
        return self._state

    def _set_state(self, state: int) -> None:
        self._state = state

    def _next_word(self) -> int:
        self._state = (self._A * self._state + self._C) & _MASK64
        return self._state

    def _next_words(self, count: int) -> np.ndarray:
        powers = np.cumprod(np.full(count, self._A, dtype=np.uint64))
        geometric = np.empty(count, dtype=np.uint64)
        geometric[0] = 1
        geometric[1:] = powers[:-1]
        partial_sums = np.cumsum(geometric, dtype=np.uint64)
        words = powers * np.uint64(self._state) + np.uint64(self._C) * partial_sums
        self._state = int(words[-1])
        return words


class XorShift64Star(ReseedablePRNG):
    """Marsaglia xorshift64* generator.

    Requires a non-zero state; the seed normalisation makes an all-zero
    state astronomically unlikely, but we guard anyway.  Block draws run
    the (inherently sequential) xorshift recurrence over Python ints and
    vectorise the output multiply into one numpy ``uint64`` operation.
    """

    name: ClassVar[str] = "xorshift64star"

    _MULT = 2685821657736338717

    def _reseed(self) -> None:
        self._state = int.from_bytes(self._seed_bytes[8:16], "big") or 0x9E3779B97F4A7C15

    def _get_state(self) -> int:
        return self._state

    def _set_state(self, state: int) -> None:
        self._state = state

    def _next_word(self) -> int:
        x = self._state
        x ^= x >> 12
        x = (x ^ (x << 25)) & _MASK64
        x ^= x >> 27
        self._state = x
        return (x * self._MULT) & _MASK64

    def _next_words(self, count: int) -> np.ndarray:
        states = np.empty(count, dtype=np.uint64)
        x = self._state
        for i in range(count):
            x ^= x >> 12
            x = (x ^ (x << 25)) & _MASK64
            x ^= x >> 27
            states[i] = x
        self._state = x
        return states * np.uint64(self._MULT)


class HashDRBG(ReseedablePRNG):
    """SHA-256 counter-mode deterministic random bit generator.

    Output block ``i`` is ``SHA-256(seed_bytes || i)``; blocks are buffered
    and served as 64-bit words.  Unpredictable without the seed under
    standard hash assumptions, with period far beyond any protocol run --
    this is the generator the paper's security analysis presumes.  Block
    draws hash many counter blocks at once from a cached SHA-256 midstate
    and split the concatenated digests with one numpy big-endian view.
    """

    name: ClassVar[str] = "hash_drbg"

    def _reseed(self) -> None:
        self._counter = 0
        self._buffer: list[int] = []
        self._midstate = hashlib.sha256(self._seed_bytes)

    def _get_state(self) -> tuple[int, list[int]]:
        return (self._counter, list(self._buffer))

    def _set_state(self, state: tuple[int, list[int]]) -> None:
        self._counter, buffer = state
        self._buffer = list(buffer)

    def _refill(self) -> None:
        block = self._midstate.copy()
        block.update(self._counter.to_bytes(8, "big"))
        digest = block.digest()
        self._counter += 1
        self._buffer = [
            int.from_bytes(digest[off : off + 8], "big") for off in (24, 16, 8, 0)
        ]

    def _next_word(self) -> int:
        if not self._buffer:
            self._refill()
        return self._buffer.pop()

    def _next_words(self, count: int) -> np.ndarray:
        out = np.empty(count, dtype=np.uint64)
        filled = 0
        while self._buffer and filled < count:
            out[filled] = self._buffer.pop()
            filled += 1
        remaining = count - filled
        if remaining:
            blocks = (remaining + 3) // 4
            midstate = self._midstate
            first = self._counter
            digests = bytearray()
            for counter in range(first, first + blocks):
                block = midstate.copy()
                block.update(counter.to_bytes(8, "big"))
                digests += block.digest()
            self._counter = first + blocks
            words = np.frombuffer(bytes(digests), dtype=">u8").astype(np.uint64)
            out[filled:] = words[:remaining]
            # Scalar draws pop from the end, so unconsumed words of the
            # last hash block are stored in reverse serve order.
            self._buffer = [int(w) for w in words[remaining:][::-1]]
        return out


_KINDS: dict[str, type[ReseedablePRNG]] = {
    Lcg64.name: Lcg64,
    XorShift64Star.name: XorShift64Star,
    HashDRBG.name: HashDRBG,
}

#: Generator used when a protocol configuration does not name one.
DEFAULT_PRNG_KIND = HashDRBG.name


def make_prng(seed: SeedLike, kind: str = DEFAULT_PRNG_KIND) -> ReseedablePRNG:
    """Construct a generator by registry name (``hash_drbg`` by default)."""
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown PRNG kind {kind!r}; available: {sorted(_KINDS)}"
        ) from None
    return cls(seed)


def available_kinds() -> tuple[str, ...]:
    """Names accepted by :func:`make_prng`."""
    return tuple(sorted(_KINDS))
