"""Scalar reference implementation of the channel transport.

The production cipher in :mod:`repro.crypto.sym` generates its
HMAC-SHA256 counter keystream from cached hash midstates and XORs with
numpy; this module preserves the original one-``hmac.new``-per-block,
XOR-per-byte implementation as the executable specification of the wire
format.  Its contract mirrors :mod:`repro.core.reference` for the
protocol engine: the fast transport must produce *byte-identical* sealed
frames to this cipher for every (key, nonce-entropy, plaintext) triple.
``tests/test_transport_equivalence.py`` pins that equivalence and
``benchmarks/test_bench_transport.py`` measures the speedup against it.

Do not "optimise" this module: its value is being the slow, obviously
RFC-shaped version.

:func:`scalar_transport` additionally reverts the whole transport stack
-- cipher *and* wire-codec fast paths -- to the scalar implementations
for the duration of a ``with`` block, so full sessions can be replayed
on the seed transport and compared frame for frame.
"""

from __future__ import annotations

import hashlib
import hmac
from contextlib import contextmanager
from typing import Iterator

from repro.crypto.keys import derive_key
from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import CryptoError, IntegrityError

_HASH = hashlib.sha256
_TAG_LEN = 32
_NONCE_LEN = 16
_BLOCK = 32


def scalar_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """HMAC-SHA256 counter-mode keystream, one ``hmac.new`` per 32 bytes."""
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hmac.new(key, nonce + counter.to_bytes(8, "big"), _HASH).digest()
        )
    return b"".join(blocks)[:length]


def scalar_xor(data: bytes, stream: bytes) -> bytes:
    """Byte-at-a-time XOR through a Python generator."""
    return bytes(a ^ b for a, b in zip(data, stream))


class ScalarSymmetricCipher:
    """The seed implementation of :class:`repro.crypto.sym.SymmetricCipher`.

    Same wire format (``nonce || ciphertext || tag``), same sub-key
    derivation, same nonce entropy consumption -- only the keystream
    generation and XOR are the original scalar code paths.
    """

    #: Bytes added to every sealed message (nonce + tag).
    OVERHEAD = _NONCE_LEN + _TAG_LEN

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("channel key must be at least 128 bits")
        self._enc_key = derive_key(key, "channel.enc")
        self._mac_key = derive_key(key, "channel.mac")

    def seal(self, plaintext: bytes, entropy: ReseedablePRNG) -> bytes:
        """Encrypt and authenticate ``plaintext`` (scalar keystream)."""
        nonce = entropy.next_bits(_NONCE_LEN * 8).to_bytes(_NONCE_LEN, "big")
        ciphertext = scalar_xor(
            plaintext, scalar_keystream(self._enc_key, nonce, len(plaintext))
        )
        tag = hmac.new(self._mac_key, nonce + ciphertext, _HASH).digest()
        return nonce + ciphertext + tag

    def open(self, sealed: bytes) -> bytes:
        """Verify and decrypt a sealed message (scalar keystream)."""
        if len(sealed) < self.OVERHEAD:
            raise IntegrityError("sealed message shorter than overhead")
        nonce = sealed[:_NONCE_LEN]
        tag = sealed[-_TAG_LEN:]
        ciphertext = sealed[_NONCE_LEN:-_TAG_LEN]
        expected = hmac.new(self._mac_key, nonce + ciphertext, _HASH).digest()
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("message authentication failed")
        return scalar_xor(
            ciphertext, scalar_keystream(self._enc_key, nonce, len(ciphertext))
        )

    def transmit_roundtrip(
        self, plaintext: bytes, entropy: ReseedablePRNG
    ) -> tuple[bytes, bytes]:
        """Seal then fully re-open, the way the seed channel paid twice.

        The production cipher shares one keystream between the two
        halves; the reference deliberately regenerates it so benchmarks
        measure the seed's true double cost.
        """
        sealed = self.seal(plaintext, entropy)
        return sealed, self.open(sealed)


@contextmanager
def scalar_transport() -> Iterator[None]:
    """Run the whole transport stack on the seed implementations.

    Within the block, newly created secure channels seal with
    :class:`ScalarSymmetricCipher` and the wire codec takes the generic
    per-element encode/decode paths.  Channels created *before* entering
    keep whatever cipher they were built with, so scope sessions inside
    the block.
    """
    from repro.network import channel, serialization

    saved_cipher = channel.SymmetricCipher
    saved_fast = serialization._FAST_PATHS
    channel.SymmetricCipher = ScalarSymmetricCipher  # type: ignore[misc,assignment]
    serialization._FAST_PATHS = False
    try:
        yield
    finally:
        channel.SymmetricCipher = saved_cipher  # type: ignore[misc]
        serialization._FAST_PATHS = saved_fast
