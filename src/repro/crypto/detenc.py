"""Deterministic encryption for categorical attributes.

Section 4.3: "Data holder parties share a secret key to encrypt their
data.  Value of the categorical attribute is encrypted for every object at
every site and these encrypted data are sent to the third party, who can
easily compute the distance ... If ciphertext of two categorical values
are the same, then plaintexts must be the same."

That is precisely a shared-key *pseudo-random function* applied to the
value: deterministic (equal plaintexts -> equal ciphertexts) yet
unintelligible to anyone without the key.  We instantiate the PRF with
HMAC-SHA256.  Ciphertexts are scoped to an attribute label so equal values
in different columns do not produce linkable ciphertexts.

Determinism is what makes equality testable by the third party, and it is
also the scheme's inherent leakage: the TP learns the frequency histogram
of each categorical column (but not the values).  The paper accepts this
leakage implicitly -- the 0/1 distance the TP outputs reveals exactly the
same equality pattern -- and we document it here so the attack-surface
inventory in ``repro.attacks`` is complete.
"""

from __future__ import annotations

import hmac
import hashlib

from repro.exceptions import CryptoError

_HASH = hashlib.sha256


class DeterministicEncryptor:
    """Keyed deterministic encryption of categorical string values.

    Parameters
    ----------
    key:
        Shared secret between the data holders (>= 16 bytes).  The third
        party must *not* hold this key; the semi-honest, non-colluding
        assumption (Section 3) is what keeps it away.
    digest_size:
        Ciphertext length in bytes.  16 keeps messages small while a
        birthday collision across two equal-looking ciphertexts would need
        ~2^64 distinct values -- far beyond any categorical domain.
    """

    def __init__(self, key: bytes, digest_size: int = 16) -> None:
        if len(key) < 16:
            raise CryptoError("deterministic encryption key must be >= 128 bits")
        if not 8 <= digest_size <= _HASH().digest_size:
            raise CryptoError(
                f"digest_size must be in [8, {_HASH().digest_size}], got {digest_size}"
            )
        self._key = key
        self._digest_size = digest_size

    @property
    def ciphertext_size(self) -> int:
        """Fixed size in bytes of every ciphertext."""
        return self._digest_size

    def encrypt(self, attribute: str, value: str) -> bytes:
        """Deterministic ciphertext of ``value`` scoped to ``attribute``.

        Scoping means ``encrypt("city", "red") != encrypt("team", "red")``,
        so the TP cannot correlate equal strings across columns.
        """
        message = attribute.encode("utf-8") + b"\x00" + value.encode("utf-8")
        return hmac.new(self._key, message, _HASH).digest()[: self._digest_size]

    def encrypt_column(self, attribute: str, values: list[str]) -> list[bytes]:
        """Encrypt a whole column (the per-site step of Section 4.3)."""
        return [self.encrypt(attribute, value) for value in values]

    @staticmethod
    def equal(ciphertext_a: bytes, ciphertext_b: bytes) -> bool:
        """The third party's comparison: ciphertext equality.

        Plain ``==`` is fine here -- ciphertexts are public to the TP by
        protocol design, so timing reveals nothing it does not already see.
        """
        return ciphertext_a == ciphertext_b
