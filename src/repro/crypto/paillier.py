"""Paillier additively homomorphic cryptosystem, from scratch.

The İnan et al. paper itself needs no homomorphic encryption -- its
protocols are PRNG-masking based, which is exactly its efficiency claim.
Paillier is implemented here as the substrate for the comparison target:
Atallah, Kerschbaum and Du's secure edit-distance protocol [8], which the
paper dismisses as "not feasible for clustering private data due to high
communication costs".  :mod:`repro.baselines.atallah` builds that protocol
on top of this module, and the ``T-EDIT`` benchmark measures the cost gap.

Implementation notes
--------------------
* Standard simplified variant with ``g = n + 1``, so encryption is
  ``(1 + m*n) * r^n mod n^2`` (no modular exponentiation for the
  ``g^m`` term) and decryption uses ``L(c^lambda mod n^2) * mu mod n``.
* Key generation draws primes from a caller-supplied seeded PRNG, keeping
  benchmark transcripts reproducible.
* Ciphertexts carry their public key reference; homomorphic operations on
  mismatched keys raise instead of corrupting silently.
* Signed plaintexts are supported through the usual centred embedding:
  values in ``(-n/3, n/3)`` round-trip exactly, which comfortably covers
  edit-distance DP cells and their additive shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.numbers import (
    generate_distinct_primes,
    lcm,
    modinv,
)
from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import CryptoError


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public half of a Paillier key: modulus ``n`` (``g`` is fixed to n+1)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def bits(self) -> int:
        """Modulus size; one ciphertext occupies ``2 * bits`` bits."""
        return self.n.bit_length()

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized size of one ciphertext, charged by cost accounting."""
        return (self.n_squared.bit_length() + 7) // 8

    @property
    def max_plaintext(self) -> int:
        """Largest magnitude that survives the signed embedding."""
        return self.n // 3

    def _random_unit(self, entropy: ReseedablePRNG) -> int:
        """Random ``r`` in ``[2, n)`` coprime to ``n``.

        A common factor with ``n`` would factor the key; probability is
        negligible but the loop keeps the implementation honest.
        """
        while True:
            r = entropy.next_bits(self.bits) % self.n
            if r < 2:
                continue
            g, _, _ = _egcd(r, self.n)
            if g == 1:
                return r

    def encrypt(self, plaintext: int, entropy: ReseedablePRNG) -> "PaillierCiphertext":
        """Encrypt a (possibly negative) integer."""
        if abs(plaintext) > self.max_plaintext:
            # Do not echo the plaintext into the exception: error strings
            # cross trust boundaries (logs, queue snapshots, bug reports).
            # The bound is public key material, so naming it is safe.
            bound = self.max_plaintext
            raise CryptoError(f"plaintext magnitude exceeds encryption bound {bound}")
        m = plaintext % self.n
        n_sq = self.n_squared
        r = self._random_unit(entropy)
        c = ((1 + m * self.n) % n_sq) * pow(r, self.n, n_sq) % n_sq
        return PaillierCiphertext(public_key=self, value=c)

    def encrypt_zero(self, entropy: ReseedablePRNG) -> "PaillierCiphertext":
        """Fresh encryption of zero (used for re-randomisation)."""
        return self.encrypt(0, entropy)


def _egcd(a: int, b: int) -> tuple[int, int, int]:
    # Local copy to avoid importing egcd at call frequency; identical logic.
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private half: Carmichael exponent ``lambda`` and precomputed ``mu``."""

    public_key: PaillierPublicKey
    # lambda/mu factor the modulus; they are *the* private material.
    lam: int = field(repr=False)
    mu: int = field(repr=False)

    def decrypt(self, ciphertext: "PaillierCiphertext") -> int:
        """Decrypt to a signed integer via the centred embedding."""
        if ciphertext.public_key.n != self.public_key.n:
            raise CryptoError("ciphertext does not match this private key")
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        u = pow(ciphertext.value, self.lam, n_sq)
        plaintext = ((u - 1) // n) * self.mu % n
        if plaintext > n // 2:
            plaintext -= n
        return plaintext


@dataclass(frozen=True)
class PaillierKeyPair:
    """Convenience bundle returned by :func:`generate_paillier_keypair`."""

    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey = field(repr=False)


@dataclass(frozen=True)
class PaillierCiphertext:
    """An element of ``Z*_{n^2}`` with homomorphic operators.

    ``+`` adds plaintexts, ``*`` multiplies the plaintext by an integer
    scalar, ``-`` negates/subtracts.  All operators return new ciphertexts;
    nothing mutates.
    """

    public_key: PaillierPublicKey
    value: int

    def _require_same_key(self, other: "PaillierCiphertext") -> None:
        if self.public_key.n != other.public_key.n:
            raise CryptoError("cannot combine ciphertexts under different keys")

    def __add__(self, other: "PaillierCiphertext") -> "PaillierCiphertext":
        self._require_same_key(other)
        n_sq = self.public_key.n_squared
        return PaillierCiphertext(self.public_key, (self.value * other.value) % n_sq)

    def add_plain(self, scalar: int) -> "PaillierCiphertext":
        """Homomorphically add a *public* integer without encrypting it."""
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        factor = (1 + (scalar % n) * n) % n_sq
        return PaillierCiphertext(self.public_key, (self.value * factor) % n_sq)

    def __mul__(self, scalar: int) -> "PaillierCiphertext":
        if not isinstance(scalar, int):
            return NotImplemented
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        return PaillierCiphertext(self.public_key, pow(self.value, scalar % n, n_sq))

    __rmul__ = __mul__

    def __neg__(self) -> "PaillierCiphertext":
        return self * -1

    def __sub__(self, other: "PaillierCiphertext") -> "PaillierCiphertext":
        return self + (-other)

    def rerandomize(self, entropy: ReseedablePRNG) -> "PaillierCiphertext":
        """Fresh-looking ciphertext of the same plaintext.

        The blind-and-permute subprotocol of the Atallah baseline depends
        on this to hide which input a forwarded ciphertext came from.
        """
        return self + self.public_key.encrypt_zero(entropy)

    def serialized_size(self) -> int:
        """Bytes on the wire; used by communication-cost accounting."""
        return self.public_key.ciphertext_bytes


def generate_paillier_keypair(
    entropy: ReseedablePRNG, bits: int = 1024
) -> PaillierKeyPair:
    """Generate a key pair with an ``bits``-bit modulus.

    ``bits=1024`` mirrors the security level contemporary to the 2006
    paper and is the default for the cost benchmarks; tests use smaller
    sizes for speed.
    """
    if bits < 64:
        raise CryptoError(f"modulus size too small: {bits}")
    half = bits // 2
    rand_bits = entropy.rand_bits_callable()
    while True:
        p, q = generate_distinct_primes(half, rand_bits)
        n = p * q
        if n.bit_length() == bits and _egcd(n, (p - 1) * (q - 1))[0] == 1:
            break
    lam = lcm(p - 1, q - 1)
    n_sq = n * n
    public = PaillierPublicKey(n=n)
    u = pow(1 + n, lam, n_sq)  # g = n+1, so L(g^lambda) has closed form
    mu = modinv((u - 1) // n, n)
    private = PaillierPrivateKey(public_key=public, lam=lam, mu=mu)
    return PaillierKeyPair(public_key=public, private_key=private)
