"""Number-theoretic primitives used by the cryptographic substrate.

Everything here is implemented from first principles on Python's arbitrary
precision integers: extended Euclid, modular inverse, lcm, Miller-Rabin
probabilistic primality testing, safe/probable prime generation and a small
CRT helper used by Paillier decryption.

Functions that need randomness take an explicit ``rand_bits`` callable
(``rand_bits(k) -> int`` returning a uniform ``k``-bit integer) so callers
control determinism; the library's seeded DRBGs plug in directly.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.exceptions import CryptoError

#: Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
    307, 311, 313, 317, 331, 337, 347, 349,
)

#: Deterministic Miller-Rabin witness sets.  Testing against the first
#: twelve primes is a *proof* of primality for every n < 3.3e24, far beyond
#: the trial sizes used in unit tests; for cryptographic sizes we add
#: random witnesses on top.
_DETERMINISTIC_WITNESSES: tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.
    Implemented iteratively so very large Paillier moduli do not hit the
    recursion limit.
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``.

    Raises :class:`CryptoError` when the inverse does not exist, which in
    Paillier keygen signals a bad prime pair rather than a programming bug.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise CryptoError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a == 0 or b == 0:
        return 0
    g, _, _ = egcd(a, b)
    return abs(a // g * b)


def _decompose(n: int) -> tuple[int, int]:
    """Write ``n - 1`` as ``2**s * d`` with ``d`` odd."""
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    return s, d


def _miller_rabin_witness(n: int, a: int, s: int, d: int) -> bool:
    """Return ``True`` when ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(s - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(
    n: int,
    rand_bits: Callable[[int], int] | None = None,
    extra_rounds: int = 16,
) -> bool:
    """Miller-Rabin primality test.

    Always runs the deterministic witness set (a proof for n < 3.3e24);
    when ``rand_bits`` is given, adds ``extra_rounds`` random witnesses so
    the error bound for cryptographic sizes is below ``4**-extra_rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    s, d = _decompose(n)
    for a in _DETERMINISTIC_WITNESSES:
        if _miller_rabin_witness(n, a % n, s, d):
            return False
    if rand_bits is not None:
        for _ in range(extra_rounds):
            a = 2 + rand_bits(n.bit_length() + 8) % (n - 3)
            if _miller_rabin_witness(n, a, s, d):
                return False
    return True


def generate_prime(bits: int, rand_bits: Callable[[int], int]) -> int:
    """Generate a probable prime with exactly ``bits`` bits.

    The candidate has its top two bits set (so products of two such primes
    have exactly ``2*bits`` bits, as Paillier keygen expects) and is odd.
    """
    if bits < 8:
        raise CryptoError(f"prime size too small: {bits} bits")
    while True:
        candidate = rand_bits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        candidate &= (1 << bits) - 1
        if is_probable_prime(candidate, rand_bits):
            return candidate


def generate_distinct_primes(
    bits: int, rand_bits: Callable[[int], int]
) -> tuple[int, int]:
    """Generate two distinct probable primes of ``bits`` bits each."""
    p = generate_prime(bits, rand_bits)
    while True:
        q = generate_prime(bits, rand_bits)
        if q != p:
            return p, q


def crt_pair(r_p: int, r_q: int, p: int, q: int, q_inv_p: int) -> int:
    """Combine residues ``r_p mod p`` and ``r_q mod q`` via Garner's CRT.

    ``q_inv_p`` must be ``q^{-1} mod p``; callers precompute it once per
    key.  Returns the unique value modulo ``p*q``.
    """
    h = (q_inv_p * (r_p - r_q)) % p
    return r_q + h * q


def int_to_bytes(n: int) -> bytes:
    """Minimal big-endian byte encoding of a non-negative integer."""
    if n < 0:
        raise CryptoError("cannot encode negative integer")
    return n.to_bytes(max(1, (n.bit_length() + 7) // 8), "big")


def bytes_to_int(data: bytes) -> int:
    """Inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")


def product(values: Iterable[int]) -> int:
    """Product of an iterable of integers (1 for the empty iterable)."""
    result = 1
    for v in values:
        result *= v
    return result
