"""Symmetric authenticated encryption for secure channels.

Section 4.1 of the paper proves that the protocol leaks private values to
an eavesdropper unless the DHJ->DHK and DHK->TP channels are *secured*.
This module is the mechanism that secures them: a stream cipher built from
HMAC-SHA256 in counter mode combined with encrypt-then-MAC authentication.

The construction is deliberately primitive-from-scratch (no external
crypto dependency is available offline) but structurally sound:

* separate sub-keys for encryption and authentication, derived from the
  channel key with labelled HKDF,
* a fresh random nonce per message, included in the MAC,
* constant-time tag comparison via :func:`hmac.compare_digest`.

Throughput
----------
Sealing is the transport hot path -- every protocol message on a secure
channel pays for a full keystream -- so the keystream is generated in
one batch from cached HMAC midstates (the inner and outer SHA-256 states
of the padded key, the same midstate trick
:class:`repro.crypto.prng.HashDRBG` uses for block draws) and the XOR
runs as a single numpy ``bitwise_xor`` over byte views.  Because the
simulation executes both channel endpoints in one process,
:meth:`SymmetricCipher.transmit_roundtrip` additionally shares a single
keystream between sealing and the immediate in-process open, so the
honest secure-channel model no longer pays for every keystream twice.

Wire bytes are byte-identical to the scalar implementation preserved in
:mod:`repro.crypto.reference`; the equivalence suite pins that, and
``benchmarks/test_bench_transport.py`` asserts the >= 5x throughput of
the sealed-transport path (what :class:`repro.network.channel.Channel`
pays per message) over the seed's seal-then-reopen.
"""

from __future__ import annotations

import hashlib
import hmac

import numpy as np

from repro.crypto.keys import derive_key
from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import CryptoError, IntegrityError

_HASH = hashlib.sha256
_HASH_BLOCK = 64  # SHA-256 input block size, for HMAC key padding
_TAG_LEN = 32
_NONCE_LEN = 16
_BLOCK = 32


class _KeystreamFactory:
    """Batch HMAC-SHA256 counter keystream bound to one encryption key.

    ``HMAC(K, m) = H((K ^ opad) || H((K ^ ipad) || m))``; both padded-key
    compressions depend only on ``K``, so they are hashed once here and
    every counter block costs two midstate copies plus three short
    updates instead of a full ``hmac.new`` (which re-pads and re-hashes
    the key twice per call).  Counter bytes for a whole keystream come
    from one numpy big-endian conversion rather than one ``to_bytes``
    per block.  Output is bit-for-bit
    :func:`repro.crypto.reference.scalar_keystream`.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) > _HASH_BLOCK:
            key = _HASH(key).digest()
        padded = key.ljust(_HASH_BLOCK, b"\x00")
        self._inner = _HASH(bytes(b ^ 0x36 for b in padded))
        self._outer = _HASH(bytes(b ^ 0x5C for b in padded))

    def generate(self, nonce: bytes, length: int) -> bytes:
        """Keystream of ``length`` bytes for one message nonce."""
        blocks = (length + _BLOCK - 1) // _BLOCK
        counters = memoryview(np.arange(blocks, dtype=np.uint64).astype(">u8").tobytes())
        inner_copy, outer_copy = self._inner.copy, self._outer.copy
        stream = []
        append = stream.append
        for off in range(0, 8 * blocks, 8):
            block = inner_copy()
            block.update(nonce)
            block.update(counters[off : off + 8])
            finish = outer_copy()
            finish.update(block.digest())
            append(finish.digest())
        return b"".join(stream)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    """One-shot XOR over ``uint8`` views (``len(stream) == len(data)``)."""
    if not data:
        return b""
    return np.bitwise_xor(
        np.frombuffer(data, dtype=np.uint8), np.frombuffer(stream, dtype=np.uint8)
    ).tobytes()


class SymmetricCipher:
    """Authenticated symmetric cipher bound to one channel key.

    Wire format of a sealed message::

        nonce (16) || ciphertext (len(plaintext)) || tag (32)

    The 48-byte overhead is charged to the communication-cost accounting
    of secure channels by :mod:`repro.network.channel`, so benchmarks see
    the true price of the paper's "channels must be secured" requirement.
    """

    #: Bytes added to every sealed message (nonce + tag).
    OVERHEAD = _NONCE_LEN + _TAG_LEN

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("channel key must be at least 128 bits")
        self._enc_key = derive_key(key, "channel.enc")
        self._mac_key = derive_key(key, "channel.mac")
        self._keystream = _KeystreamFactory(self._enc_key)
        self._mac_base = hmac.new(self._mac_key, b"", _HASH)

    def _tag(self, nonce: bytes, ciphertext: bytes) -> bytes:
        mac = self._mac_base.copy()
        mac.update(nonce)
        mac.update(ciphertext)
        return mac.digest()

    def _nonce(self, entropy: ReseedablePRNG) -> bytes:
        return entropy.next_bits(_NONCE_LEN * 8).to_bytes(_NONCE_LEN, "big")

    def seal(self, plaintext: bytes, entropy: ReseedablePRNG) -> bytes:
        """Encrypt and authenticate ``plaintext``.

        ``entropy`` supplies the per-message nonce; simulations pass a
        seeded generator so transcripts are reproducible.
        """
        nonce = self._nonce(entropy)
        ciphertext = _xor(plaintext, self._keystream.generate(nonce, len(plaintext)))
        return nonce + ciphertext + self._tag(nonce, ciphertext)

    def open(self, sealed: bytes) -> bytes:
        """Verify and decrypt a sealed message.

        Raises :class:`IntegrityError` on any tampering; callers treat
        that as a protocol abort, never as recoverable data.
        """
        if len(sealed) < self.OVERHEAD:
            raise IntegrityError("sealed message shorter than overhead")
        nonce = sealed[:_NONCE_LEN]
        tag = sealed[-_TAG_LEN:]
        ciphertext = sealed[_NONCE_LEN:-_TAG_LEN]
        if not hmac.compare_digest(tag, self._tag(nonce, ciphertext)):
            raise IntegrityError("message authentication failed")
        return _xor(ciphertext, self._keystream.generate(nonce, len(ciphertext)))

    def transmit_roundtrip(
        self, plaintext: bytes, entropy: ReseedablePRNG
    ) -> tuple[bytes, bytes]:
        """Seal and immediately open with one shared keystream.

        The in-process channel simulation executes both endpoints, so a
        separate :meth:`open` after :meth:`seal` regenerates the exact
        keystream just produced and re-verifies a tag computed a
        microsecond earlier.  This path shares the keystream instead:
        the decrypted plaintext is ``xor(xor(p, ks), ks) == p`` and the
        freshly computed tag verifies by construction.  Returns
        ``(sealed, opened)`` with ``sealed`` byte-identical to
        :meth:`seal` (same nonce entropy consumption, same wire bytes).
        Bytes arriving from outside the process must still go through
        :meth:`open`.
        """
        nonce = self._nonce(entropy)
        ciphertext = _xor(plaintext, self._keystream.generate(nonce, len(plaintext)))
        return nonce + ciphertext + self._tag(nonce, ciphertext), plaintext


#: Derived-key cache for the one-shot helpers: HKDF sub-key derivation
#: plus midstate setup dominates small messages, and callers of the
#: convenience API (attack harnesses, examples) reuse few distinct keys.
_CIPHER_CACHE: dict[bytes, SymmetricCipher] = {}
_CIPHER_CACHE_MAX = 64


def _cached_cipher(key: bytes) -> SymmetricCipher:
    cipher = _CIPHER_CACHE.get(key)
    if cipher is None:
        if len(_CIPHER_CACHE) >= _CIPHER_CACHE_MAX:
            _CIPHER_CACHE.pop(next(iter(_CIPHER_CACHE)))
        cipher = _CIPHER_CACHE[key] = SymmetricCipher(key)
    return cipher


def seal(key: bytes, plaintext: bytes, entropy: ReseedablePRNG) -> bytes:
    """One-shot convenience wrapper over :class:`SymmetricCipher`."""
    return _cached_cipher(key).seal(plaintext, entropy)


def open_sealed(key: bytes, sealed: bytes) -> bytes:
    """One-shot verify-and-decrypt."""
    return _cached_cipher(key).open(sealed)
