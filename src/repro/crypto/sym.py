"""Symmetric authenticated encryption for secure channels.

Section 4.1 of the paper proves that the protocol leaks private values to
an eavesdropper unless the DHJ->DHK and DHK->TP channels are *secured*.
This module is the mechanism that secures them: a stream cipher built from
HMAC-SHA256 in counter mode combined with encrypt-then-MAC authentication.

The construction is deliberately primitive-from-scratch (no external
crypto dependency is available offline) but structurally sound:

* separate sub-keys for encryption and authentication, derived from the
  channel key with labelled HKDF,
* a fresh random nonce per message, included in the MAC,
* constant-time tag comparison via :func:`hmac.compare_digest`.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.keys import derive_key
from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import CryptoError, IntegrityError

_HASH = hashlib.sha256
_TAG_LEN = 32
_NONCE_LEN = 16
_BLOCK = 32


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """HMAC-SHA256 counter-mode keystream of ``length`` bytes."""
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hmac.new(key, nonce + counter.to_bytes(8, "big"), _HASH).digest()
        )
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


class SymmetricCipher:
    """Authenticated symmetric cipher bound to one channel key.

    Wire format of a sealed message::

        nonce (16) || ciphertext (len(plaintext)) || tag (32)

    The 48-byte overhead is charged to the communication-cost accounting
    of secure channels by :mod:`repro.network.channel`, so benchmarks see
    the true price of the paper's "channels must be secured" requirement.
    """

    #: Bytes added to every sealed message (nonce + tag).
    OVERHEAD = _NONCE_LEN + _TAG_LEN

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("channel key must be at least 128 bits")
        self._enc_key = derive_key(key, "channel.enc")
        self._mac_key = derive_key(key, "channel.mac")

    def seal(self, plaintext: bytes, entropy: ReseedablePRNG) -> bytes:
        """Encrypt and authenticate ``plaintext``.

        ``entropy`` supplies the per-message nonce; simulations pass a
        seeded generator so transcripts are reproducible.
        """
        nonce = entropy.next_bits(_NONCE_LEN * 8).to_bytes(_NONCE_LEN, "big")
        ciphertext = _xor(plaintext, _keystream(self._enc_key, nonce, len(plaintext)))
        tag = hmac.new(self._mac_key, nonce + ciphertext, _HASH).digest()
        return nonce + ciphertext + tag

    def open(self, sealed: bytes) -> bytes:
        """Verify and decrypt a sealed message.

        Raises :class:`IntegrityError` on any tampering; callers treat
        that as a protocol abort, never as recoverable data.
        """
        if len(sealed) < self.OVERHEAD:
            raise IntegrityError("sealed message shorter than overhead")
        nonce = sealed[:_NONCE_LEN]
        tag = sealed[-_TAG_LEN:]
        ciphertext = sealed[_NONCE_LEN:-_TAG_LEN]
        expected = hmac.new(self._mac_key, nonce + ciphertext, _HASH).digest()
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("message authentication failed")
        return _xor(ciphertext, _keystream(self._enc_key, nonce, len(ciphertext)))


def seal(key: bytes, plaintext: bytes, entropy: ReseedablePRNG) -> bytes:
    """One-shot convenience wrapper over :class:`SymmetricCipher`."""
    return SymmetricCipher(key).seal(plaintext, entropy)


def open_sealed(key: bytes, sealed: bytes) -> bytes:
    """One-shot verify-and-decrypt."""
    return SymmetricCipher(key).open(sealed)
