"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.crypto.prng import make_prng
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.data.alphabet import DNA_ALPHABET
from repro.types import AttributeType


@pytest.fixture
def numeric_schema():
    return [AttributeSpec("value", AttributeType.NUMERIC, precision=0)]


@pytest.fixture
def mixed_schema():
    return [
        AttributeSpec("age", AttributeType.NUMERIC, precision=0),
        AttributeSpec("score", AttributeType.NUMERIC, precision=3),
        AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
        AttributeSpec("city", AttributeType.CATEGORICAL),
    ]


@pytest.fixture
def mixed_partitions(mixed_schema):
    """Three small sites covering every attribute type."""
    site_a = DataMatrix(
        mixed_schema,
        [
            [34, 1.25, "ACGTAC", "istanbul"],
            [71, 9.5, "TTTTGG", "ankara"],
            [36, 1.5, "ACGTTC", "istanbul"],
        ],
    )
    site_b = DataMatrix(
        mixed_schema,
        [
            [38, 1.0, "ACGAAC", "izmir"],
            [67, 9.125, "TTCTGG", "ankara"],
        ],
    )
    site_c = DataMatrix(
        mixed_schema,
        [
            [40, 2.0, "ACGTAA", "istanbul"],
            [69, 8.75, "TTTTGC", "izmir"],
            [33, 1.125, "AGGTAC", "bursa"],
            [72, 9.0, "TTATGG", "ankara"],
        ],
    )
    return {"A": site_a, "B": site_b, "C": site_c}


@pytest.fixture
def mixed_session(mixed_partitions):
    return ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=42), mixed_partitions
    )


@pytest.fixture
def fast_suite():
    """Insecure channels + xorshift: fastest configuration for bulk tests."""
    return ProtocolSuiteConfig(
        prng_kind="xorshift64star", secure_channels=False
    )


@pytest.fixture
def entropy():
    return make_prng("test-entropy")
