"""Concurrency regression tests for the `# guarded-by:` annotated state.

Each test hammers one lock-protected invariant that the RL3xx lint now
proves lexically: the lint shows every write site is inside the declared
``with <lock>``; these tests show the locks actually protect what the
annotations claim under real thread interleavings.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.config import ProtocolSuiteConfig
from repro.core.scheduler import Step, _ParallelRun
from repro.data.matrix import AttributeSpec, Schema
from repro.data.partition import GlobalIndex
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ProtocolError
from repro.network.simulator import Network
from repro.parties.third_party import ThirdParty
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("v", AttributeType.NUMERIC, precision=0),
    AttributeSpec("w", AttributeType.NUMERIC, precision=0),
]


def _third_party() -> ThirdParty:
    net = Network()
    for name in ("A", "B", "TP"):
        net.add_party(name)
    for pair in (("A", "TP"), ("B", "TP")):
        net.connect(*pair, secure=False)
    return ThirdParty(
        "TP",
        net,
        Schema(SCHEMA),
        GlobalIndex({"A": 2, "B": 2}),
        ProtocolSuiteConfig(secure_channels=False),
    )


def _hammer(threads: int, body) -> None:
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def runner(index: int) -> None:
        barrier.wait()
        try:
            body(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(runner, range(threads)))
    assert not errors, errors


class TestThirdPartyStorageLock:
    def test_matrix_for_first_touch_is_one_object(self):
        # Double-checked creation: every thread racing the first touch of
        # an attribute must observe the same matrix object, or concurrent
        # block writes would land in different matrices and be lost.
        for _ in range(20):
            tp = _third_party()
            seen: list[object] = []
            lock = threading.Lock()

            def touch(_index: int, tp=tp, seen=seen, lock=lock) -> None:
                matrix = tp._matrix_for("v")
                with lock:
                    seen.append(matrix)

            _hammer(8, touch)
            assert all(m is seen[0] for m in seen)

    def test_concurrent_finalize_attribute(self):
        tp = _third_party()
        size = tp.index.total_objects
        tail = size * (size - 1) // 2
        for spec in SCHEMA:
            tp._raw[spec.name] = DissimilarityMatrix(
                size, np.arange(1.0, tail + 1.0, dtype=np.float64)
            )

        def finalize(index: int) -> None:
            tp.finalize_attribute(SCHEMA[index % len(SCHEMA)].name)

        _hammer(8, finalize)
        for spec in SCHEMA:
            expected = tp._raw[spec.name].normalized().condensed
            assert np.array_equal(
                tp.attribute_matrix(spec.name).condensed, expected
            )

    def test_concurrent_receive_encrypted_columns(self):
        # Per-holder tag lanes make the receives lane-exclusive, so the
        # only shared state racing here is the ``_pending_categorical``
        # dict: the setdefault + insert must be atomic or columns vanish.
        net = Network()
        holders = [f"S{i}" for i in range(4)]
        for name in [*holders, "TP"]:
            net.add_party(name)
        for name in holders:
            net.connect(name, "TP", secure=False)
        tp = ThirdParty(
            "TP",
            net,
            Schema([AttributeSpec("c", AttributeType.CATEGORICAL)]),
            GlobalIndex({name: 2 for name in holders}),
            ProtocolSuiteConfig(secure_channels=False),
        )
        for i, holder in enumerate(holders):
            net.send(
                holder,
                "TP",
                "encrypted_column",
                {"attribute": "c", "ciphertexts": [b"x%d" % i, b"y%d" % i]},
                tag=f"col{i}",
            )

        def receive(index: int) -> None:
            tp.receive_encrypted_column(holders[index], tag=f"col{index}")

        _hammer(len(holders), receive)
        assert set(tp._pending_categorical["c"]) == set(holders)


class TestNetworkLaneLocks:
    def test_concurrent_sends_account_every_arrival(self):
        # The per-recipient arrival counter is read-modify-write; without
        # its lock, concurrent sends would lose increments and deliveries.
        net = Network()
        senders = [f"S{i}" for i in range(4)]
        for name in [*senders, "R"]:
            net.add_party(name)
        for name in senders:
            net.connect(name, "R", secure=False)
        per_sender = 25

        def send(index: int) -> None:
            for n in range(per_sender):
                net.send(senders[index], "R", "k", n, tag=f"lane{index}")

        _hammer(len(senders), send)
        received = 0
        while True:
            try:
                net.receive("R")
            except ProtocolError:
                break
            received += 1
        assert received == len(senders) * per_sender

    def test_concurrent_transmits_account_every_byte(self):
        net = Network()
        for name in ("A", "B"):
            net.add_party(name)
        channel = net.connect("A", "B", secure=False)
        per_thread = 50

        def send(index: int) -> None:
            sender, recipient = ("A", "B") if index % 2 == 0 else ("B", "A")
            for n in range(per_thread):
                net.send(sender, recipient, "k", [n] * 4, tag="hammer")

        _hammer(4, send)
        total = (
            channel.stats("A", "B").messages + channel.stats("B", "A").messages
        )
        assert total == 4 * per_thread
        assert channel.tag_totals()["hammer"].messages == total


class TestParallelRunState:
    def _steps(self, count: int, log: list[str], lock: threading.Lock):
        def make(name: str):
            def run() -> None:
                with lock:
                    log.append(name)

            return run

        steps = [Step(name="root", run=make("root"), order=(0,))]
        steps += [
            Step(name=f"mid{i}", run=make(f"mid{i}"), deps=("root",), order=(1, i))
            for i in range(count)
        ]
        steps.append(
            Step(
                name="sink",
                run=make("sink"),
                deps=tuple(f"mid{i}" for i in range(count)),
                order=(2,),
            )
        )
        return steps

    def test_fan_out_fan_in_trace_is_complete(self):
        log: list[str] = []
        lock = threading.Lock()
        steps = self._steps(12, log, lock)
        trace, failed, cancelled = _ParallelRun(steps, max_workers=6).run()
        assert sorted(trace) == sorted(s.name for s in steps)
        assert not failed and cancelled == ()
        assert trace[0] == "root" and trace[-1] == "sink"
        assert sorted(log) == sorted(trace)

    def test_step_failure_propagates(self):
        def boom() -> None:
            raise ValueError("step exploded")

        steps = [
            Step(name="ok", run=lambda: None, order=(0,)),
            Step(name="bad", run=boom, deps=("ok",), order=(1,)),
            Step(name="after", run=lambda: None, deps=("bad",), order=(2,)),
        ]
        with pytest.raises(ValueError, match="step exploded"):
            _ParallelRun(steps, max_workers=2).run()

    def test_cycle_reports_deadlock(self):
        steps = [
            Step(name="a", run=lambda: None, deps=("b",), order=(0,)),
            Step(name="b", run=lambda: None, deps=("a",), order=(1,)),
        ]
        with pytest.raises(ProtocolError, match="deadlocked"):
            _ParallelRun(steps, max_workers=2).run()

    def test_unknown_dependency_rejected(self):
        steps = [Step(name="a", run=lambda: None, deps=("ghost",), order=(0,))]
        with pytest.raises(ProtocolError, match="ghost"):
            _ParallelRun(steps, max_workers=1)
