"""Tests for ordered categorical attributes (repro.ext.ordinal)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import DataMatrix
from repro.distance.local import local_dissimilarity
from repro.exceptions import SchemaError
from repro.ext.ordinal import OrdinalScale

TIERS = OrdinalScale(["basic", "plus", "premium", "enterprise"])


class TestScale:
    def test_ranks(self):
        assert TIERS.rank("basic") == 0
        assert TIERS.rank("enterprise") == 3
        assert TIERS.span == 3

    def test_distance_normalized(self):
        assert TIERS.distance("basic", "enterprise") == 1.0
        assert TIERS.distance("basic", "plus") == pytest.approx(1 / 3)
        assert TIERS.distance("plus", "plus") == 0.0

    def test_distance_raw(self):
        raw = OrdinalScale(["a", "b", "c"], normalized=False)
        assert raw.distance("a", "c") == 2.0

    def test_symmetry_and_triangle(self):
        values = TIERS.categories
        for a in values:
            for b in values:
                assert TIERS.distance(a, b) == TIERS.distance(b, a)
                for c in values:
                    assert TIERS.distance(a, c) <= TIERS.distance(
                        a, b
                    ) + TIERS.distance(b, c)

    def test_unknown_value(self):
        with pytest.raises(SchemaError):
            TIERS.rank("gold")

    def test_validation(self):
        with pytest.raises(SchemaError):
            OrdinalScale([])
        with pytest.raises(SchemaError):
            OrdinalScale(["a", "a"])

    def test_singleton_scale(self):
        single = OrdinalScale(["only"])
        assert single.distance("only", "only") == 0.0

    def test_decode_rank(self):
        assert TIERS.decode_rank(2) == "premium"
        with pytest.raises(SchemaError):
            TIERS.decode_rank(4)

    def test_encode_column(self):
        assert TIERS.encode_column(["plus", "basic"]) == [1, 0]

    def test_attribute_spec(self):
        spec = TIERS.attribute_spec("tier")
        assert spec.precision == 0
        assert spec.attr_type.value == "numeric"


class TestSessionIntegration:
    def test_ordinal_through_numeric_protocol_is_exact(self):
        """Rank-encoded ordinals ride the unchanged numeric protocol; the
        private matrix equals the cleartext ordinal metric (the Figure 11
        normalisation supplies the span scaling)."""
        spec = TIERS.attribute_spec("tier")
        col_a = ["basic", "enterprise", "plus"]
        col_b = ["premium", "basic"]
        partitions = {
            "A": DataMatrix([spec], [[r] for r in TIERS.encode_column(col_a)]),
            "B": DataMatrix([spec], [[r] for r in TIERS.encode_column(col_b)]),
        }
        session = ClusteringSession(SessionConfig(num_clusters=2), partitions)
        private = session.final_matrix()

        merged = col_a + col_b  # site order A then B
        reference = local_dissimilarity(merged, TIERS.distance)
        assert private.allclose(reference, atol=1e-12)

    @given(
        values=st.lists(
            st.sampled_from(TIERS.categories), min_size=4, max_size=10
        ),
        split=st.integers(1, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_exactness(self, values, split):
        """For arbitrary corpora the pipeline normalises by the *observed*
        max rank difference (Figure 11), so the reference is the
        normalised rank metric; it coincides with the span-scaled scale
        metric exactly when both extremes occur (previous test)."""
        split = min(split, len(values) - 1)
        spec = TIERS.attribute_spec("tier")
        partitions = {
            "A": DataMatrix(
                [spec], [[r] for r in TIERS.encode_column(values[:split])]
            ),
            "B": DataMatrix(
                [spec], [[r] for r in TIERS.encode_column(values[split:])]
            ),
        }
        session = ClusteringSession(SessionConfig(num_clusters=2), partitions)
        ranks = TIERS.encode_column(values)
        reference = local_dissimilarity(
            ranks, lambda a, b: float(abs(a - b))
        ).normalized()
        assert session.final_matrix().allclose(reference, atol=1e-12)
