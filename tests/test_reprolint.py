"""Self-tests for the reprolint static-analysis suite.

Fixture-driven: ``tests/reprolint_fixtures/`` mirrors the real source
layout and carries at least one true positive per rule family, the
negative cases for every escape hatch, and the suppression grammar's
corner cases.  On top of that, the repo's own tree must lint clean --
the linter is only useful while that invariant holds, so it is a test.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from reprolint import __version__
from reprolint.config import Config, ConfigError, load_config
from reprolint.engine import lint_paths
from reprolint.findings import RULES
from reprolint.report import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "reprolint_fixtures"
TOOLS = REPO_ROOT / "tools"


@pytest.fixture(scope="module")
def fixture_result():
    config = load_config(FIXTURES / "pyproject.toml")
    return lint_paths(["src"], config, FIXTURES)


def rules_at(result, rel, *, suppressed=False):
    return sorted(
        f.rule
        for f in result.findings
        if f.path == rel and f.suppressed == suppressed
    )


# -- the rule catalogue is a stable public interface ------------------------


def test_rule_catalogue_is_pinned():
    assert set(RULES) == {
        "RL001", "RL002", "RL003",
        "RL101", "RL102", "RL103", "RL104", "RL105", "RL106",
        "RL201", "RL202", "RL203", "RL204",
        "RL301", "RL302",
        "RL401", "RL402",
        "RL501", "RL502", "RL503",
    }


def test_every_family_declares_known_rules():
    from reprolint.rules import ALL_FAMILIES

    declared = [rule for family in ALL_FAMILIES for rule in family.rules]
    assert declared, "no rule families registered"
    assert len(declared) == len(set(declared)), "rule ID claimed twice"
    assert set(declared) <= set(RULES)


# -- one true positive per family (and the negatives stay silent) -----------


def test_determinism_positives(fixture_result):
    rules = rules_at(fixture_result, "src/repro/core/determinism_bad.py")
    assert rules == ["RL101", "RL102", "RL103", "RL104", "RL104", "RL105", "RL106"]


def test_determinism_negatives(fixture_result):
    assert rules_at(fixture_result, "src/repro/core/determinism_ok.py") == []


def test_secrecy_positives(fixture_result):
    rules = rules_at(fixture_result, "src/repro/crypto/secrecy_bad.py")
    assert rules == ["RL201", "RL201", "RL202", "RL203", "RL204"]


def test_secrecy_negatives(fixture_result):
    assert rules_at(fixture_result, "src/repro/crypto/secrecy_ok.py") == []


def test_lock_discipline_positives(fixture_result):
    rules = rules_at(fixture_result, "src/repro/network/locks_bad.py")
    assert rules == ["RL301", "RL301", "RL302"]
    lines = sorted(
        f.line
        for f in fixture_result.findings
        if f.path == "src/repro/network/locks_bad.py" and f.rule == "RL301"
    )
    # Direct subscript store and mutation through a local alias.
    assert lines == [15, 19]


def test_lock_discipline_negatives(fixture_result):
    assert rules_at(fixture_result, "src/repro/network/locks_ok.py") == []


def test_reference_coverage(fixture_result):
    rules = rules_at(fixture_result, "src/repro/core/fast_mod.py")
    assert rules == ["RL401", "RL402"]
    (rl401,) = [
        f
        for f in fixture_result.findings
        if f.path == "src/repro/core/fast_mod.py" and f.rule == "RL401"
    ]
    assert "vectorized_unmask" in rl401.message
    assert rules_at(fixture_result, "src/repro/core/ref_mod.py") == []


def test_serialization_boundary(fixture_result):
    assert rules_at(fixture_result, "src/repro/parties/wire_bad.py") == [
        "RL501",
        "RL501",
    ]
    # The codec itself is exempt.
    assert rules_at(fixture_result, "src/repro/network/serialization.py") == []


def test_socket_boundary(fixture_result):
    # One finding per banned import: asyncio, socket, selectors.
    assert rules_at(fixture_result, "src/repro/parties/socket_bad.py") == [
        "RL502",
        "RL502",
        "RL502",
    ]
    # The transport layer itself is exempt.
    assert rules_at(fixture_result, "src/repro/network/socket_ok.py") == []


def test_storage_boundary(fixture_result):
    # One finding for the mmap import, one for the np.memmap use.
    assert rules_at(fixture_result, "src/repro/parties/storage_bad.py") == [
        "RL503",
        "RL503",
    ]
    # The storage backend itself is exempt.
    assert rules_at(fixture_result, "src/repro/distance/store.py") == []


# -- suppression handling ---------------------------------------------------


def test_justified_suppression_is_marked_not_active(fixture_result):
    rel = "src/repro/core/suppression_cases.py"
    suppressed = [
        f for f in fixture_result.findings if f.path == rel and f.suppressed
    ]
    assert [f.rule for f in suppressed] == ["RL103"]
    assert "justified waiver" in suppressed[0].justification


def test_unjustified_stale_and_unknown_suppressions(fixture_result):
    rel = "src/repro/core/suppression_cases.py"
    # Missing justification -> RL001 AND the RL103 stays active;
    # stale -> RL002; unknown rule id -> RL001.
    assert rules_at(fixture_result, rel) == ["RL001", "RL001", "RL002", "RL103"]


def test_retry_clock_waiver_pattern(fixture_result):
    """The retry module's justified clock waivers lint clean while an
    unwaived clock read in the same module stays an active finding."""
    rel = "src/repro/network/retry_cases.py"
    assert rules_at(fixture_result, rel) == ["RL103"]
    suppressed = [
        f for f in fixture_result.findings if f.path == rel and f.suppressed
    ]
    assert [f.rule for f in suppressed] == ["RL103", "RL103"]
    assert all("fixture" in f.justification for f in suppressed)


def test_file_wide_suppression_covers_every_finding(fixture_result):
    rel = "src/repro/core/filewide_cases.py"
    assert rules_at(fixture_result, rel) == []
    assert rules_at(fixture_result, rel, suppressed=True) == ["RL103", "RL103"]


def test_hygiene_rules_are_not_waivable(tmp_path):
    # A suppression of RL002 cannot silence the stale-suppression check.
    bad = tmp_path / "src" / "repro" / "core" / "module.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "x = 1  # reprolint: disable=RL501 -- totally stale waiver\n"
        "y = 2  # reprolint: disable=RL002 -- trying to waive the waiver check\n",
        encoding="utf-8",
    )
    result = lint_paths(["src"], Config(), tmp_path)
    assert sorted(f.rule for f in result.findings) == ["RL002", "RL002"]
    assert not any(f.suppressed for f in result.findings)


def test_syntax_error_becomes_rl003(tmp_path):
    bad = tmp_path / "src" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n", encoding="utf-8")
    result = lint_paths(["src"], Config(), tmp_path)
    assert [f.rule for f in result.findings] == ["RL003"]


# -- configuration ----------------------------------------------------------


def test_unknown_config_key_is_an_error(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.reprolint]\nprotocol_pathz = []\n", encoding="utf-8")
    with pytest.raises(ConfigError, match="protocol_pathz"):
        load_config(pyproject)


def test_missing_pyproject_yields_defaults(tmp_path):
    config = load_config(tmp_path / "pyproject.toml")
    assert config.in_protocol_scope("src/repro/core/session.py")
    assert not config.in_protocol_scope("src/repro/clustering/linkage.py")
    assert config.is_excluded("tests/reprolint_fixtures/src/x.py")


# -- the repo's own tree must lint clean ------------------------------------


def test_repository_is_clean():
    config = load_config(REPO_ROOT / "pyproject.toml")
    result = lint_paths(["src", "tests", "benchmarks"], config, REPO_ROOT)
    active = [f.format() for f in result.active]
    assert active == [], "\n".join(active)
    # The one standing waiver: the simulator's latency sleep.
    assert any(
        f.path == "src/repro/network/simulator.py" and f.rule == "RL103"
        for f in result.suppressed
    )


# -- reporters and CLI ------------------------------------------------------


def test_json_report_shape(fixture_result):
    payload = json.loads(render_json(fixture_result))
    assert payload["version"] == 1
    assert payload["files_scanned"] == fixture_result.files_scanned
    assert payload["summary"]["RL301"] == 2
    by_rule = {f["rule"] for f in payload["findings"]}
    assert "RL401" in by_rule
    suppressed = [f for f in payload["findings"] if f["suppressed"]]
    assert suppressed and all(f["justification"] for f in suppressed)


def test_text_report_mentions_suppression(fixture_result):
    text = render_text(fixture_result)
    assert "[suppressed:" in text
    assert text.strip().endswith("suppressed")


def _run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(TOOLS)
    return subprocess.run(
        [sys.executable, "-m", "reprolint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


def test_cli_exit_codes_and_json_output(tmp_path):
    clean = _run_cli("src", "tests", "benchmarks")
    assert clean.returncode == 0, clean.stdout + clean.stderr

    artifact = tmp_path / "report.json"
    dirty = _run_cli(
        "src",
        "--root", str(FIXTURES),
        "--config", str(FIXTURES / "pyproject.toml"),
        "--format", "json",
        "--json-output", str(artifact),
    )
    assert dirty.returncode == 1
    payload = json.loads(dirty.stdout)
    assert payload["summary"]["RL101"] == 1
    assert json.loads(artifact.read_text(encoding="utf-8")) == payload


def test_cli_list_rules():
    listing = _run_cli("--list-rules")
    assert listing.returncode == 0
    for rule_id in RULES:
        assert rule_id in listing.stdout


def test_version_is_exported():
    assert __version__
