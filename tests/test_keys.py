"""Tests for Diffie-Hellman agreement and key derivation."""

from __future__ import annotations

import pytest

from repro.crypto.keys import (
    DiffieHellman,
    PairwiseSecret,
    agree_pairwise,
    derive_key,
    derive_seed,
    secret_from_passphrase,
)
from repro.crypto.prng import make_prng
from repro.exceptions import KeyAgreementError


class TestDiffieHellman:
    def test_shared_secret_agreement(self):
        a = DiffieHellman(make_prng("alice"))
        b = DiffieHellman(make_prng("bob"))
        assert a.shared_secret(b.public_value) == b.shared_secret(a.public_value)

    def test_different_pairs_different_secrets(self):
        a = DiffieHellman(make_prng("a"))
        b = DiffieHellman(make_prng("b"))
        c = DiffieHellman(make_prng("c"))
        ab = a.shared_secret(b.public_value)
        ac = a.shared_secret(c.public_value)
        assert ab != ac

    def test_deterministic_from_entropy(self):
        a1 = DiffieHellman(make_prng("same"))
        a2 = DiffieHellman(make_prng("same"))
        assert a1.public_value == a2.public_value

    @pytest.mark.parametrize("bad", [0, 1])
    def test_degenerate_peer_rejected(self, bad):
        a = DiffieHellman(make_prng("x"))
        with pytest.raises(KeyAgreementError):
            a.shared_secret(bad)

    def test_peer_equal_p_minus_1_rejected(self):
        a = DiffieHellman(make_prng("x"))
        with pytest.raises(KeyAgreementError):
            a.shared_secret(a.prime - 1)

    def test_out_of_range_peer_rejected(self):
        a = DiffieHellman(make_prng("x"))
        with pytest.raises(KeyAgreementError):
            a.shared_secret(a.prime + 5)

    def test_small_group_works(self):
        """Tiny toy group for exhaustive sanity (p=23, g=5)."""
        a = DiffieHellman(make_prng("a"), prime=23, generator=5)
        b = DiffieHellman(make_prng("b"), prime=23, generator=5)
        assert a.shared_secret(b.public_value) == b.shared_secret(a.public_value)

    def test_tiny_prime_rejected(self):
        with pytest.raises(KeyAgreementError):
            DiffieHellman(make_prng("a"), prime=3)


class TestDerivation:
    def test_labels_separate_streams(self):
        secret = b"s" * 32
        assert derive_seed(secret, "one") != derive_seed(secret, "two")
        assert derive_key(secret, "one") != derive_seed(secret, "one")

    def test_deterministic(self):
        secret = b"s" * 32
        assert derive_key(secret, "label") == derive_key(secret, "label")

    def test_lengths(self):
        secret = b"s" * 32
        assert len(derive_key(secret, "l", 16)) == 16
        assert len(derive_key(secret, "l", 64)) == 64
        assert len(derive_seed(secret, "l")) == 32

    def test_too_long_rejected(self):
        with pytest.raises(KeyAgreementError):
            derive_key(b"s" * 32, "l", 32 * 256)


class TestPairwiseSecret:
    def test_pair_canonical_order(self):
        s = PairwiseSecret(pair=("B", "A"), secret=b"x" * 32)
        assert s.pair == ("A", "B")

    def test_self_pair_rejected(self):
        with pytest.raises(KeyAgreementError):
            PairwiseSecret(pair=("A", "A"), secret=b"x" * 32)

    def test_prng_agreement_across_endpoints(self):
        """Both endpoints derive the identical generator for a label --
        the foundational requirement for rng_JK / rng_JT."""
        s1 = PairwiseSecret(pair=("A", "B"), secret=b"x" * 32)
        s2 = PairwiseSecret(pair=("B", "A"), secret=b"x" * 32)
        g1 = s1.prng("attr/num")
        g2 = s2.prng("attr/num")
        assert [g1.next_uint64() for _ in range(10)] == [
            g2.next_uint64() for _ in range(10)
        ]

    def test_labels_give_independent_prngs(self):
        s = PairwiseSecret(pair=("A", "B"), secret=b"x" * 32)
        assert s.prng("age").next_uint64() != s.prng("income").next_uint64()

    def test_prng_kind_override(self):
        s = PairwiseSecret(pair=("A", "B"), secret=b"x" * 32)
        assert s.prng("l", kind="lcg64").name == "lcg64"

    def test_key_derivation(self):
        s = PairwiseSecret(pair=("A", "B"), secret=b"x" * 32)
        assert len(s.key("channel")) == 32
        assert s.key("channel") != s.key("detenc")

    def test_passphrase_secret(self):
        s1 = secret_from_passphrase(("A", "B"), 12345)
        s2 = secret_from_passphrase(("B", "A"), 12345)
        assert s1.prng("l").next_uint64() == s2.prng("l").next_uint64()


class TestAgreePairwise:
    def test_all_pairs_present(self):
        secrets = agree_pairwise(
            {name: make_prng(name) for name in ("A", "B", "C", "TP")}
        )
        assert set(secrets) == {
            ("A", "B"), ("A", "C"), ("A", "TP"),
            ("B", "C"), ("B", "TP"), ("C", "TP"),
        }

    def test_pairs_have_distinct_secrets(self):
        secrets = agree_pairwise({name: make_prng(name) for name in "ABC"})
        values = [s.secret for s in secrets.values()]
        assert len(set(values)) == len(values)

    def test_single_party_rejected(self):
        with pytest.raises(KeyAgreementError):
            agree_pairwise({"A": make_prng(1)})
