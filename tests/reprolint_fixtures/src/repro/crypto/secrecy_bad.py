"""RL2xx true positives.  Fixture corpus: linted, never imported."""

import logging
from dataclasses import dataclass

logger = logging.getLogger(__name__)


class Mixer:
    def __init__(self, seed: int) -> None:
        self._seed = seed

    def __repr__(self) -> str:
        return f"Mixer(seed={self._seed})"


@dataclass
class Sealed:
    key: bytes
    size: int


def announce(secret_key: bytes) -> None:
    print(secret_key)
    logger.info("session key %r", secret_key)


def reject(payload) -> None:
    raise ValueError(f"bad payload: {payload}")
