"""RL2xx negatives: every secrecy escape hatch, used correctly."""

from dataclasses import dataclass, field


@dataclass
class Wrapped:
    label: str
    key: bytes = field(repr=False)


class Quiet:
    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._draws = 0

    def __repr__(self) -> str:
        return f"Quiet(seed=<redacted>, draws={self._draws})"


def report(seed, secret) -> None:
    # Sanitizing wrappers reveal structure, never content.
    print(type(seed).__name__)
    print(len(secret))
    # Declared-safe structural attributes of a secret object.
    print(secret.pair)


def reject(message) -> None:
    # Binding the harmless scalar to an honest name is the sanctioned
    # way to mention payload-derived values in errors.
    size = len(message.content)
    raise ValueError(f"frame too large: {size}")
