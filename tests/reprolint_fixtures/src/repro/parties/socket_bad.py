"""RL502 true positives.  Fixture corpus: linted, never imported."""

import asyncio
import socket
from selectors import DefaultSelector


def dial(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port))
    asyncio.get_event_loop()
    DefaultSelector()
    return sock
