"""RL503 positives: a feature module mmapping matrix bytes itself."""

import mmap

import numpy as np


def load_matrix(path, size):
    # np.memmap outside distance/store.py: an unmanaged mapping.
    return np.memmap(path, dtype=np.float64, mode="r", shape=(size,))


def map_shard(handle):
    return mmap.mmap(handle.fileno(), 0)
