"""RL501 true positives.  Fixture corpus: linted, never imported."""

import struct


def pack(value: int) -> bytes:
    return struct.pack(">I", value) + value.to_bytes(4, "big")
