"""RL503 negative: the storage backend itself is the permitted site."""

import mmap

import numpy as np


def open_shard(path, entries):
    return np.memmap(path, dtype=np.float64, mode="r+", shape=(entries,))


def raw_map(handle):
    return mmap.mmap(handle.fileno(), 0)
