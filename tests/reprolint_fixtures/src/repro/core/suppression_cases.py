"""RL0xx fixture: the suppression grammar's corner cases."""

import time


def justified() -> None:
    time.sleep(0.0)  # reprolint: disable=RL103 -- fixture: a justified waiver stays visible but inactive


def unjustified() -> float:
    return time.monotonic()  # reprolint: disable=RL103


def stale() -> int:
    return 1  # reprolint: disable=RL501 -- fixture: nothing on this line packs bytes, so the waiver is stale


def unknown_rule() -> int:
    return 2  # reprolint: disable=RL999 -- fixture: there is no rule RL999
