"""RL4xx fixture: a "fast" module paired with ref_mod.py."""


def vectorized_mask(values):
    # Covered: ref_mod defines reference_vectorized_mask.
    return values


def vectorized_unmask(values):
    # Uncovered: no counterpart, no allowlist entry -> RL401.
    return values
