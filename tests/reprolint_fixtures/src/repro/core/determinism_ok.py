"""RL1xx negatives: allowed patterns inside a protocol layer."""

import time


def ordered(values) -> list:
    # sorted() realizes a deterministic order, so set containers are fine
    # as long as every iteration goes through it.
    return sorted({v for v in values})


def benchmark_hook() -> float:
    return time.perf_counter()  # reprolint: disable=RL103 -- fixture: timing hook feeds diagnostics only, never protocol output
