"""RL4xx fixture: the executable specification sibling of fast_mod."""


def reference_vectorized_mask(values):
    return list(values)
