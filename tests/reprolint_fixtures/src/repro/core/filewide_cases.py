"""RL0xx fixture: one file-wide waiver covering multiple findings."""
# reprolint: disable-file=RL103 -- fixture: this module is a timing harness; every clock read is diagnostic

import time


def first() -> float:
    return time.time()


def second() -> float:
    return time.monotonic()
