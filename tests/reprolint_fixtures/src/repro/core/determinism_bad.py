"""RL1xx true positives.  Fixture corpus: linted, never imported."""

import os
import random
import time
import uuid

import numpy as np


def ambient_random() -> float:
    return random.random()


def global_numpy_state():
    return np.random.rand(3)


def wall_clock() -> float:
    return time.time()


def os_entropy() -> bytes:
    return os.urandom(16)


def ambient_uuid() -> str:
    return str(uuid.uuid4())


def hash_order() -> list:
    out = []
    for item in {"a", "b", "c"}:
        out.append(item)
    return out


def rogue_prng(seed: int):
    from repro.crypto.prng import make_prng

    return make_prng(seed)
