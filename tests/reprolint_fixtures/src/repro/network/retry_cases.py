"""RL103 fixture: the retry module's clock-waiver pattern.

Mirrors ``src/repro/network/retry.py``: wall-clock reads that pace or
bound a retry loop carry justified waivers (suppressed, not active),
while a clock read that leaks into protocol-visible state stays an
active finding no matter what the surrounding code looks like.
"""

import time


def paced_backoff(delay: float) -> None:
    if delay > 0:
        time.sleep(delay)  # reprolint: disable=RL103 -- fixture: paces retransmits in wall-clock time only, like RetryPolicy.backoff


def deadline_anchor() -> float:
    return time.monotonic()  # reprolint: disable=RL103 -- fixture: bounds a retry loop's wall-clock budget, like RetryPolicy.start_clock


def leaked_into_protocol_state() -> float:
    # No waiver: a clock read feeding protocol-visible state must stay
    # an active finding even in a module full of justified waivers.
    return time.monotonic()
