"""RL3xx negatives: lock discipline done right, including the escapes."""

import threading


class SafeRegistry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._locks: dict[str, threading.Lock] = {}
        # guarded-by: self._lock
        self._entries: dict[str, int] = {}
        # guarded-by: self._lock | self._locks[*]
        self._lanes: dict[str, list[int]] = {}

    def record(self, name: str) -> None:
        with self._lock:
            self._entries[name] = 1
            self._locks[name] = threading.Lock()

    def push(self, name: str, value: int) -> None:
        # The wildcard alternative: any subscript of the lock table.
        with self._locks[name]:
            lane = self._lanes.setdefault(name, [])
            lane.append(value)

    def _forget_locked(self, name: str) -> None:
        # The _locked suffix is the documented caller-holds-the-lock
        # contract; writes here are exempt.
        self._entries.pop(name, None)
