"""RL502 negative: the transport layer may use sockets and event loops."""

import asyncio
import socket


def listen(path: str) -> socket.socket:
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(path)
    asyncio.new_event_loop().close()
    return server
