"""RL501 negative: the wire codec itself is allowed to pack bytes."""


def encode(value: int) -> bytes:
    return value.to_bytes(8, "big")
