"""RL3xx true positives.  Fixture corpus: linted, never imported."""

import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        # guarded-by: self._lock
        self._entries: dict[str, int] = {}
        # guarded-by: self._missing_lock
        self._orphans: list[str] = []

    def record(self, name: str) -> None:
        self._entries[name] = 1

    def forget(self, name: str) -> None:
        entries = self._entries
        entries.pop(name, None)
