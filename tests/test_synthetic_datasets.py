"""Tests for synthetic generators and named datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import datasets
from repro.data.alphabet import DNA_ALPHABET
from repro.data.synthetic import (
    categorical_column,
    dna_clusters,
    gaussian_clusters,
    integer_clusters,
    mutate_sequence,
    ring_clusters,
    zipf_weights,
)
from repro.distance.edit import edit_distance
from repro.exceptions import ConfigurationError


class TestGaussianClusters:
    def test_shapes_and_labels(self):
        rows, labels = gaussian_clusters([5, 7], dim=3, seed=1)
        assert len(rows) == 12 and len(labels) == 12
        assert all(len(r) == 3 for r in rows)
        assert labels == [0] * 5 + [1] * 7

    def test_deterministic(self):
        a, _ = gaussian_clusters([4], seed=9)
        b, _ = gaussian_clusters([4], seed=9)
        assert a == b

    def test_separation_controls_structure(self):
        rows, labels = gaussian_clusters([20, 20], separation=20.0, seed=2)
        data = np.asarray(rows)
        center0 = data[:20].mean(axis=0)
        center1 = data[20:].mean(axis=0)
        within = np.linalg.norm(data[:20] - center0, axis=1).mean()
        assert np.linalg.norm(center0 - center1) > 3 * within

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            gaussian_clusters([])
        with pytest.raises(ConfigurationError):
            gaussian_clusters([0])
        with pytest.raises(ConfigurationError):
            gaussian_clusters([3], dim=0)


class TestIntegerClusters:
    def test_integrality_and_centers(self):
        rows, labels = integer_clusters([10, 10], separation=100, spread=3, seed=3)
        assert all(isinstance(v, int) for row in rows for v in row)
        first = [r[0] for r, l in zip(rows, labels) if l == 0]
        second = [r[0] for r, l in zip(rows, labels) if l == 1]
        assert max(first) < min(second)


class TestDnaClusters:
    def test_alphabet_and_sizes(self):
        seqs, labels = dna_clusters([4, 4, 4], length=30, seed=4)
        assert len(seqs) == 12
        for s in seqs:
            DNA_ALPHABET.validate(s)

    def test_cluster_structure_in_edit_space(self):
        """Within-cluster edit distances must undercut between-cluster."""
        seqs, labels = dna_clusters([5, 5], length=40, seed=5)
        within, between = [], []
        for i in range(len(seqs)):
            for j in range(i):
                d = edit_distance(seqs[i], seqs[j])
                (within if labels[i] == labels[j] else between).append(d)
        assert float(np.mean(within)) < float(np.mean(between))

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            dna_clusters([3], within_rate=0.5, between_rate=0.1)

    def test_mutate_sequence_never_empty(self):
        rng = np.random.default_rng(0)
        out = mutate_sequence("A", 1.0, rng)
        assert len(out) >= 1
        DNA_ALPHABET.validate(out)


class TestCategoricalAndRings:
    def test_categorical_column(self):
        col = categorical_column(50, ["a", "b"], seed=6)
        assert len(col) == 50 and set(col) <= {"a", "b"}

    def test_categorical_weights_skew(self):
        col = categorical_column(500, ["hot", "cold"], weights=[9, 1], seed=7)
        assert col.count("hot") > 350

    def test_categorical_validation(self):
        with pytest.raises(ConfigurationError):
            categorical_column(5, [])
        with pytest.raises(ConfigurationError):
            categorical_column(5, ["a"], weights=[1, 2])
        with pytest.raises(ConfigurationError):
            categorical_column(5, ["a"], weights=[0])

    def test_zipf_weights(self):
        w = zipf_weights(4)
        assert w[0] > w[1] > w[2] > w[3] > 0

    def test_rings_radii(self):
        rows, labels = ring_clusters([30, 30], radii=[1.0, 4.0], seed=8)
        data = np.asarray(rows)
        radius = np.linalg.norm(data, axis=1)
        inner = radius[np.asarray(labels) == 0]
        outer = radius[np.asarray(labels) == 1]
        assert inner.max() < outer.min()

    def test_rings_validation(self):
        with pytest.raises(ConfigurationError):
            ring_clusters([10], radii=[1.0, 2.0])


class TestNamedDatasets:
    @pytest.mark.parametrize(
        "builder",
        [
            datasets.bird_flu,
            datasets.customer_segmentation,
            datasets.gaussian_numeric,
            datasets.rings,
            datasets.zipf_categorical,
        ],
    )
    def test_dataset_consistency(self, builder):
        ds = builder()
        index = ds.index
        assert index.total_objects == sum(
            m.num_rows for m in ds.partitions.values()
        )
        assert set(ds.labels) == set(index.refs())
        flat = ds.labels_in_global_order()
        assert len(flat) == index.total_objects
        schemas = {m.schema for m in ds.partitions.values()}
        assert len(schemas) == 1

    def test_datasets_deterministic(self):
        a = datasets.bird_flu(seed=3)
        b = datasets.bird_flu(seed=3)
        assert a.partitions["A"] == b.partitions["A"]
        assert a.labels == b.labels

    def test_figure13_layout(self):
        ds = datasets.figure13_toy()
        assert [ds.partitions[s].num_rows for s in ("A", "B", "C")] == [3, 4, 3]
        assert ds.num_clusters == 3

    def test_bird_flu_schema(self):
        ds = datasets.bird_flu()
        spec = ds.schema.spec("dna")
        assert spec.alphabet is DNA_ALPHABET

    def test_site_name_bounds(self):
        with pytest.raises(ConfigurationError):
            datasets.bird_flu(num_institutions=0)
