"""Golden wire transcript of a small 3-site session.

The communication benchmarks re-derive Table-style totals analytically;
what they cannot catch is *transport-layer drift* -- a serialization
tweak, an extra frame, a changed sealing overhead -- that shifts real
wire bytes while every analytic count stays put.  This module pins the
per-link transcript of one fixed sealed session (message kinds, order,
and exact per-frame wire bytes) as golden data.

Everything here is deterministic in ``master_seed``: if an intentional
transport change moves these numbers, regenerate the constants with the
session below and update them *in the same change* -- that is the
point, the diff then shows the cost of the change.
"""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.network.channel import Eavesdropper
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("age", AttributeType.NUMERIC, precision=0),
    AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    AttributeSpec("city", AttributeType.CATEGORICAL),
]

PARTITIONS = {
    "A": [[34, "ACGTAC", "istanbul"], [71, "TTTTGG", "ankara"]],
    "B": [[38, "ACGAAC", "izmir"], [67, "TTCTGG", "ankara"]],
    "C": [
        [40, "ACGTAA", "istanbul"],
        [69, "TTTTGC", "izmir"],
        [33, "AGGTAC", "bursa"],
    ],
}

MASTER_SEED = 2006

#: Golden per-link transcripts: (sender, kind, wire bytes) per frame, in
#: delivery order, for every link of the 3-site deployment.
GOLDEN_FRAMES = {
    ("A", "B"): [
        ("A", "group_key", 85),
        ("A", "masked_vector", 119),
        ("A", "masked_strings", 114),
    ],
    ("A", "C"): [
        ("A", "group_key", 85),
        ("A", "masked_vector", 119),
        ("A", "masked_strings", 114),
    ],
    ("A", "TP"): [
        ("A", "local_matrix", 126),
        ("A", "local_matrix", 126),
        ("A", "encrypted_column", 139),
        ("A", "weights", 80),
        ("TP", "result", 301),
    ],
    ("B", "C"): [
        ("B", "masked_vector", 119),
        ("B", "masked_strings", 114),
    ],
    ("B", "TP"): [
        ("B", "local_matrix", 126),
        ("B", "comparison_matrix", 177),
        ("B", "local_matrix", 126),
        ("B", "ccm_matrices", 403),
        ("B", "encrypted_column", 139),
        ("B", "weights", 80),
        ("TP", "result", 301),
    ],
    ("C", "TP"): [
        ("C", "local_matrix", 142),
        ("C", "comparison_matrix", 210),
        ("C", "comparison_matrix", 210),
        ("C", "local_matrix", 142),
        ("C", "ccm_matrices", 548),
        ("C", "ccm_matrices", 548),
        ("C", "encrypted_column", 160),
        ("C", "weights", 80),
        ("TP", "result", 301),
    ],
}

#: Per-link wire-byte totals implied by the frames (kept explicit so a
#: failure names the drifted link before anyone diffs frame lists).
GOLDEN_LINK_BYTES = {
    link: sum(size for _, _, size in frames)
    for link, frames in GOLDEN_FRAMES.items()
}

GOLDEN_TOTAL_BYTES = 5334


def _run_tapped_session(suite: ProtocolSuiteConfig | None = None):
    partitions = {
        site: DataMatrix(SCHEMA, rows) for site, rows in PARTITIONS.items()
    }
    config = SessionConfig(num_clusters=2, master_seed=MASTER_SEED)
    if suite is not None:
        config = SessionConfig(
            num_clusters=2, master_seed=MASTER_SEED, suite=suite
        )
    session = ClusteringSession(config, partitions)
    names = [*sorted(partitions), "TP"]
    taps = {}
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            tap = Eavesdropper(f"{a}|{b}")
            session.network.attach_tap(a, b, tap)
            taps[(a, b)] = tap
    session.run()
    return session, taps


class TestGoldenTranscript:
    def test_per_link_frames_and_bytes(self):
        session, taps = _run_tapped_session()
        assert set(taps) == set(GOLDEN_FRAMES)
        for link, tap in sorted(taps.items()):
            frames = [(f.sender, f.kind, len(f.wire)) for f in tap.frames]
            assert frames == GOLDEN_FRAMES[link], f"transcript drifted on {link}"
            assert (
                session.network.bytes_on_link(*link) == GOLDEN_LINK_BYTES[link]
            ), f"byte count drifted on {link}"
        assert session.total_bytes() == GOLDEN_TOTAL_BYTES

    def test_transcript_is_reproducible(self):
        """Two runs with one seed emit byte-identical wire frames."""
        _, taps_one = _run_tapped_session()
        _, taps_two = _run_tapped_session()
        for link in taps_one:
            wire_one = [f.wire for f in taps_one[link].frames]
            wire_two = [f.wire for f in taps_two[link].frames]
            assert wire_one == wire_two, f"non-deterministic frames on {link}"

    @pytest.mark.parametrize("backend", ["memory", "memmap"])
    def test_float64_backends_leave_wire_bytes_untouched(self, backend):
        """Storage is invisible on the wire: every frame of a session on
        a float64 backend is byte-identical to the golden transcript."""
        suite = ProtocolSuiteConfig(
            store_backend=backend, store_block_entries=16, store_cache_bytes=512
        )
        session, taps = _run_tapped_session(suite)
        # Reference pinned to the in-memory backend explicitly, so a
        # REPRO_STORE_BACKEND override (the CI storage matrix) cannot
        # move the golden side of the comparison.
        _, golden_taps = _run_tapped_session(
            ProtocolSuiteConfig(store_backend="memory")
        )
        for link in golden_taps:
            wire = [f.wire for f in taps[link].frames]
            golden = [f.wire for f in golden_taps[link].frames]
            assert wire == golden, f"backend {backend} drifted bytes on {link}"
        assert session.total_bytes() == GOLDEN_TOTAL_BYTES

    def test_float32_backend_keeps_frame_shape(self):
        """The float32 backend may round stored distances (so published
        values can move) but must not change the protocol: same links,
        same frame kinds, same order."""
        suite = ProtocolSuiteConfig(
            store_backend="float32", store_block_entries=16
        )
        _, taps = _run_tapped_session(suite)
        assert set(taps) == set(GOLDEN_FRAMES)
        for link, tap in sorted(taps.items()):
            kinds = [(f.sender, f.kind) for f in tap.frames]
            assert kinds == [
                (sender, kind) for sender, kind, _ in GOLDEN_FRAMES[link]
            ], f"float32 changed the frame sequence on {link}"
