"""Tests for the alphanumeric comparison protocol (Section 4.2, Figures 7-10).

Covers the literal Figure 7 trace, equality of protocol CCMs with
plaintext CCMs, distance correctness over random string sets, and the
per-string / per-row reseeding semantics the pseudocode mandates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alphanumeric import (
    initiator_mask_strings,
    responder_ccm_matrices,
    third_party_decode_ccm,
    third_party_distances,
)
from repro.crypto.prng import make_prng
from repro.data.alphabet import DNA_ALPHABET, FIGURE7_ALPHABET, Alphabet
from repro.distance.ccm import ccm_from_strings
from repro.distance.edit import edit_distance
from repro.exceptions import ProtocolError, SchemaError


def run_protocol(strings_j, strings_k, alphabet, seed=7, kind="hash_drbg"):
    rng_j = make_prng(seed, kind)
    rng_tp = make_prng(seed, kind)
    masked = initiator_mask_strings(strings_j, alphabet, rng_j)
    matrices = responder_ccm_matrices(strings_k, masked, alphabet)
    return third_party_distances(matrices, alphabet, rng_tp)


class SequenceRng:
    """Replays a fixed offset vector (the paper's R = '013')."""

    def __init__(self, offsets):
        self._offsets = list(offsets)
        self._pos = 0

    def next_below(self, _bound):
        value = self._offsets[self._pos % len(self._offsets)]
        self._pos += 1
        return value

    def next_below_block(self, count, bound):
        return np.asarray([self.next_below(bound) for _ in range(count)], dtype=np.int64)

    def reset(self):
        self._pos = 0


class TestFigure7Trace:
    """s = 'abc', t = 'bd', R = (0, 1, 3) over alphabet {a, b, c, d}."""

    def test_masking(self):
        masked = initiator_mask_strings(["abc"], FIGURE7_ALPHABET, SequenceRng([0, 1, 3]))
        assert masked == ["acb"]

    def test_intermediary_matrix(self):
        matrices = responder_ccm_matrices(["bd"], ["acb"], FIGURE7_ALPHABET)
        m = matrices[0][0]
        # M[q][p] = (s'[p] - t[q]) mod 4, as letters: [[d, b, a], [b, d, c]]
        letters = [[FIGURE7_ALPHABET.char(int(c)) for c in row] for row in m]
        assert letters == [["d", "b", "a"], ["b", "d", "c"]]

    def test_ccm_decoding(self):
        matrices = responder_ccm_matrices(["bd"], ["acb"], FIGURE7_ALPHABET)
        ccm = third_party_decode_ccm(
            matrices[0][0], FIGURE7_ALPHABET, SequenceRng([0, 1, 3])
        )
        # The paper: CCM[0][1] = 0, implying s[1] == t[0] == 'b'.
        assert ccm.tolist() == [[1, 0, 1], [1, 1, 1]]
        assert np.array_equal(ccm, ccm_from_strings("abc", "bd"))

    def test_full_distance(self):
        distances = third_party_distances(
            responder_ccm_matrices(["bd"], ["acb"], FIGURE7_ALPHABET),
            FIGURE7_ALPHABET,
            SequenceRng([0, 1, 3]),
        )
        assert distances.tolist() == [[edit_distance("abc", "bd")]]


class TestCcmRecovery:
    @given(
        s=st.text(alphabet="ACGT", min_size=0, max_size=15),
        t=st.text(alphabet="ACGT", min_size=1, max_size=15),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_protocol_ccm_equals_plaintext_ccm(self, s, t, seed):
        rng_j = make_prng(seed)
        rng_tp = make_prng(seed)
        masked = initiator_mask_strings([s], DNA_ALPHABET, rng_j)
        matrices = responder_ccm_matrices([t], masked, DNA_ALPHABET)
        ccm = third_party_decode_ccm(matrices[0][0], DNA_ALPHABET, rng_tp)
        assert np.array_equal(ccm, ccm_from_strings(s, t))

    def test_masked_strings_differ_from_plaintext(self):
        rng = make_prng(123)
        masked = initiator_mask_strings(["ACGTACGTACGTACGT"], DNA_ALPHABET, rng)
        assert masked[0] != "ACGTACGTACGTACGT"

    def test_mask_reuse_across_strings(self):
        """Figure 8 reseeds per string: position p of every string gets
        the same offset.  (This is the paper's design; its statistical
        implications are acknowledged future work in Section 6.)"""
        rng = make_prng(5)
        masked = initiator_mask_strings(["AAAA", "AAAA"], DNA_ALPHABET, rng)
        assert masked[0] == masked[1]


class TestDistances:
    def test_multi_string_batch(self):
        strings_j = ["ACGT", "TTTT", "A", ""]
        strings_k = ["ACG", "GATTACA"]
        result = run_protocol(strings_j, strings_k, DNA_ALPHABET)
        for m, t in enumerate(strings_k):
            for n, s in enumerate(strings_j):
                assert result[m][n] == edit_distance(s, t), (s, t)

    @given(
        strings_j=st.lists(st.text(alphabet="ACGT", max_size=10), min_size=1, max_size=4),
        strings_k=st.lists(st.text(alphabet="ACGT", max_size=10), min_size=1, max_size=4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_distances(self, strings_j, strings_k, seed):
        result = run_protocol(strings_j, strings_k, DNA_ALPHABET, seed=seed)
        for m, t in enumerate(strings_k):
            for n, s in enumerate(strings_j):
                assert result[m][n] == edit_distance(s, t)

    def test_different_lengths(self):
        result = run_protocol(["AC"], ["ACGTACGT"], DNA_ALPHABET)
        assert result.tolist() == [[6]]

    def test_custom_alphabet(self):
        alphabet = Alphabet("xyz!")
        result = run_protocol(["xyz", "!!"], ["zyx"], alphabet)
        assert result[0][0] == edit_distance("xyz", "zyx")
        assert result[0][1] == edit_distance("!!", "zyx")


class TestValidation:
    def test_foreign_character_rejected_at_masking(self):
        with pytest.raises(SchemaError):
            initiator_mask_strings(["AXGT"], DNA_ALPHABET, make_prng(1))

    def test_foreign_character_rejected_at_responder(self):
        with pytest.raises(SchemaError):
            responder_ccm_matrices(["AXGT"], ["ACGT"], DNA_ALPHABET)

    def test_oversized_alphabet_rejected(self):
        big = Alphabet("".join(chr(i) for i in range(33, 33 + 300)))
        with pytest.raises(ProtocolError):
            responder_ccm_matrices(["a"], ["b"], big)

    def test_bad_ccm_dims_rejected(self):
        with pytest.raises(ProtocolError):
            third_party_distances(
                [[np.zeros(3, dtype=np.uint8)]], DNA_ALPHABET, make_prng(1)
            )

    def test_wrong_tp_seed_gives_wrong_ccm(self):
        rng_j = make_prng(1)
        masked = initiator_mask_strings(["ACGTACGT"], DNA_ALPHABET, rng_j)
        matrices = responder_ccm_matrices(["ACGTACGT"], masked, DNA_ALPHABET)
        ccm = third_party_decode_ccm(matrices[0][0], DNA_ALPHABET, make_prng(2))
        assert not np.array_equal(ccm, ccm_from_strings("ACGTACGT", "ACGTACGT"))
