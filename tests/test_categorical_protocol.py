"""Tests for the categorical comparison protocol (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.core.categorical import (
    holder_encrypt_column,
    third_party_categorical_matrix,
)
from repro.crypto.detenc import DeterministicEncryptor
from repro.data.partition import GlobalIndex
from repro.distance.categorical import categorical_distance
from repro.distance.local import local_dissimilarity
from repro.exceptions import ProtocolError

KEY = b"shared-holder-key-0123456789abcd"


def _encrypt_sites(columns: dict[str, list[str]], attribute: str = "city"):
    encryptor = DeterministicEncryptor(KEY)
    return {
        site: holder_encrypt_column(encryptor, attribute, values)
        for site, values in columns.items()
    }


class TestProtocol:
    def test_matches_plaintext_matrix(self):
        columns = {
            "A": ["red", "blue", "red"],
            "B": ["blue", "green"],
        }
        index = GlobalIndex({"A": 3, "B": 2})
        encrypted = _encrypt_sites(columns)
        matrix = third_party_categorical_matrix(encrypted, index)

        merged_plain = columns["A"] + columns["B"]
        expected = local_dissimilarity(merged_plain, categorical_distance)
        assert matrix.allclose(expected)

    def test_cross_site_equality_detected(self):
        columns = {"A": ["x"], "B": ["x"], "C": ["y"]}
        index = GlobalIndex({"A": 1, "B": 1, "C": 1})
        matrix = third_party_categorical_matrix(_encrypt_sites(columns), index)
        assert matrix[1, 0] == 0.0  # A0 == B0
        assert matrix[2, 0] == 1.0  # A0 != C0

    def test_canonical_site_order(self):
        """Rows must follow sorted site order regardless of dict order."""
        columns = {"B": ["v"], "A": ["w"]}
        index = GlobalIndex({"A": 1, "B": 1})
        matrix = third_party_categorical_matrix(_encrypt_sites(columns), index)
        assert matrix[1, 0] == 1.0

    def test_missing_site_rejected(self):
        index = GlobalIndex({"A": 1, "B": 1})
        with pytest.raises(ProtocolError):
            third_party_categorical_matrix(_encrypt_sites({"A": ["x"]}), index)

    def test_extra_site_rejected(self):
        index = GlobalIndex({"A": 1})
        encrypted = _encrypt_sites({"A": ["x"], "B": ["y"]})
        with pytest.raises(ProtocolError):
            third_party_categorical_matrix(encrypted, index)

    def test_size_mismatch_rejected(self):
        index = GlobalIndex({"A": 2, "B": 1})
        encrypted = _encrypt_sites({"A": ["x"], "B": ["y"]})
        with pytest.raises(ProtocolError):
            third_party_categorical_matrix(encrypted, index)

    def test_different_keys_break_equality(self):
        """Sites must share one key; differing keys make everything look
        distinct (silent accuracy loss the group-key setup prevents)."""
        index = GlobalIndex({"A": 1, "B": 1})
        enc_a = DeterministicEncryptor(b"a" * 32)
        enc_b = DeterministicEncryptor(b"b" * 32)
        encrypted = {
            "A": holder_encrypt_column(enc_a, "city", ["same"]),
            "B": holder_encrypt_column(enc_b, "city", ["same"]),
        }
        matrix = third_party_categorical_matrix(encrypted, index)
        assert matrix[1, 0] == 1.0

    def test_tp_sees_only_ciphertexts(self):
        """The TP input contains no plaintext value."""
        encrypted = _encrypt_sites({"A": ["topsecret"], "B": ["topsecret"]})
        for column in encrypted.values():
            for ciphertext in column:
                assert b"topsecret" not in ciphertext
                assert isinstance(ciphertext, bytes)
