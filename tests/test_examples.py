"""Smoke tests: every example script runs and prints its key output.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["Cluster1", "Total protocol traffic"],
    "bird_flu_dna.py": ["adjusted Rand index", "Newick export"],
    "customer_segmentation.py": ["Company A's result", "Company B's result"],
    "record_linkage.py": ["True duplicates found: 3/3"],
    "streaming_arrivals.py": [
        "incremental matrix identical to full rebuild: True",
        "retired 1 record",
    ],
    "parallel_sessions.py": [
        "parallel result identical to sequential: True",
        "merged matrices bit-identical: True",
        "batch results identical to serial serving: True",
    ],
    "outlier_detection.py": ["Flagged: ['BANK_B2']"],
    "attack_demo.py": [
        "DHJ recovers them EXACTLY",
        "frames the eavesdropper could decode: 0",
    ],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    for expected in CASES[script]:
        assert expected in result.stdout, (
            f"{script} output missing {expected!r}:\n{result.stdout}"
        )


def test_module_demo_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert "max |private - centralized| matrix entry: 0.0" in result.stdout
