"""Integration tests: full sessions across all protocols and configs.

These are the paper's end-to-end story: k holders + TP construct the
global dissimilarity matrix with zero accuracy loss and publish only
membership lists.
"""

from __future__ import annotations

import pytest

from repro.baselines.centralized import centralized_pipeline
from repro.clustering.quality import adjusted_rand_index
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.results import ClusteringResult
from repro.core.session import ClusteringSession
from repro.data.datasets import bird_flu, figure13_toy, gaussian_numeric
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.exceptions import ConfigurationError
from repro.types import AttributeType


class TestExactness:
    """T-ACC: the private pipeline equals the centralized one, exactly."""

    def test_mixed_attributes_exact(self, mixed_partitions):
        session = ClusteringSession(
            SessionConfig(num_clusters=2, master_seed=1), mixed_partitions
        )
        private = session.final_matrix()
        central, _, _, _ = centralized_pipeline(mixed_partitions)
        assert private.allclose(central, atol=0.0)  # bit-for-bit

    def test_exact_for_every_prng_kind(self, mixed_partitions):
        from repro.crypto.prng import available_kinds

        central, _, _, _ = centralized_pipeline(mixed_partitions)
        for kind in available_kinds():
            suite = ProtocolSuiteConfig(prng_kind=kind)
            session = ClusteringSession(
                SessionConfig(num_clusters=2, suite=suite), mixed_partitions
            )
            assert session.final_matrix().allclose(central, atol=0.0), kind

    def test_exact_in_per_pair_mode(self, mixed_partitions):
        suite = ProtocolSuiteConfig(batch_numeric=False)
        session = ClusteringSession(
            SessionConfig(num_clusters=2, suite=suite), mixed_partitions
        )
        central, _, _, _ = centralized_pipeline(mixed_partitions)
        assert session.final_matrix().allclose(central, atol=0.0)

    def test_exact_without_secure_channels(self, mixed_partitions):
        suite = ProtocolSuiteConfig(secure_channels=False)
        session = ClusteringSession(
            SessionConfig(num_clusters=2, suite=suite), mixed_partitions
        )
        central, _, _, _ = centralized_pipeline(mixed_partitions)
        assert session.final_matrix().allclose(central, atol=0.0)

    def test_clustering_identical_to_centralized(self):
        ds = gaussian_numeric(num_sites=3, per_cluster=8, num_clusters=3)
        session = ClusteringSession(
            SessionConfig(num_clusters=3), ds.partitions
        )
        result = session.run()
        _, _, central_labels, index = centralized_pipeline(
            ds.partitions, num_clusters=3
        )
        private_labels = result.labels_for(list(index.refs()))
        assert adjusted_rand_index(central_labels, private_labels) == 1.0


class TestFigure13:
    def test_membership_reproduced(self):
        ds = figure13_toy()
        session = ClusteringSession(SessionConfig(num_clusters=3), ds.partitions)
        result = session.run()
        published = {
            frozenset(str(m) for m in cluster.members)
            for cluster in result.clusters
        }
        expected = {
            frozenset({"A0", "A2", "B3", "C2"}),
            frozenset({"B1", "B2", "C0", "C1"}),
            frozenset({"A1", "B0"}),
        }
        assert published == expected

    def test_format_figure13_layout(self):
        ds = figure13_toy()
        session = ClusteringSession(SessionConfig(num_clusters=3), ds.partitions)
        text = session.run().format_figure13()
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("Cluster1\t")
        assert "A1, A3, B4, C3" in text  # 1-based ids, per the paper


class TestSessionMechanics:
    def test_deterministic_transcripts(self, mixed_partitions):
        a = ClusteringSession(
            SessionConfig(num_clusters=2, master_seed=9), mixed_partitions
        )
        b = ClusteringSession(
            SessionConfig(num_clusters=2, master_seed=9), mixed_partitions
        )
        ra, rb = a.run(), b.run()
        assert ra.to_payload() == rb.to_payload()
        assert a.total_bytes() == b.total_bytes()

    def test_different_seed_different_bytes(self, mixed_partitions):
        """Masks differ by seed, so big-int wire sizes differ (slightly)."""
        a = ClusteringSession(
            SessionConfig(num_clusters=2, master_seed=1), mixed_partitions
        )
        b = ClusteringSession(
            SessionConfig(num_clusters=2, master_seed=2), mixed_partitions
        )
        ra, rb = a.run(), b.run()
        # Same published result regardless of masking randomness.
        assert ra.to_payload() == rb.to_payload()

    def test_all_holders_receive_same_result(self, mixed_partitions):
        session = ClusteringSession(SessionConfig(num_clusters=2), mixed_partitions)
        result = session.run()  # run() asserts holder copies match
        assert isinstance(result, ClusteringResult)
        assert result.num_objects == 9

    def test_network_drained_after_run(self, mixed_session):
        mixed_session.run()
        mixed_session.network.assert_drained()

    def test_quality_statistics_published(self, mixed_session):
        result = mixed_session.run()
        assert set(result.quality) == {c.cluster_id for c in result.clusters}
        assert all(v >= 0 for v in result.quality.values())

    def test_result_payload_roundtrip(self, mixed_session):
        result = mixed_session.run()
        clone = ClusteringResult.from_payload(result.to_payload())
        assert clone.to_payload() == result.to_payload()

    def test_execute_protocol_idempotent(self, mixed_session):
        mixed_session.execute_protocol()
        bytes_after_first = mixed_session.total_bytes()
        mixed_session.execute_protocol()
        assert mixed_session.total_bytes() == bytes_after_first

    def test_two_holders_minimum(self, numeric_schema):
        partitions = {
            "A": DataMatrix(numeric_schema, [[1], [2]]),
            "B": DataMatrix(numeric_schema, [[100]]),
        }
        session = ClusteringSession(SessionConfig(num_clusters=2), partitions)
        result = session.run()
        sizes = sorted(len(c.members) for c in result.clusters)
        assert sizes == [1, 2]

    def test_five_holders(self, numeric_schema):
        partitions = {
            name: DataMatrix(numeric_schema, [[i * 100], [i * 100 + 1]])
            for i, name in enumerate("ABCDE")
        }
        session = ClusteringSession(SessionConfig(num_clusters=5), partitions)
        result = session.run()
        assert len(result.clusters) == 5
        assert all(len(c.members) == 2 for c in result.clusters)


class TestWeights:
    def _partitions(self):
        schema = [
            AttributeSpec("x", AttributeType.NUMERIC, precision=0),
            AttributeSpec("y", AttributeType.NUMERIC, precision=0),
        ]
        # x separates {A0,B0} vs {A1,B1}; y separates {A0,B1} vs {A1,B0}.
        return {
            "A": DataMatrix(schema, [[0, 0], [100, 100]]),
            "B": DataMatrix(schema, [[1, 99], [99, 1]]),
        }

    def test_weight_vector_changes_clustering(self):
        partitions = self._partitions()
        by_x = ClusteringSession(
            SessionConfig(num_clusters=2, weights=[1.0, 0.0]), partitions
        ).run()
        by_y = ClusteringSession(
            SessionConfig(num_clusters=2, weights=[0.0, 1.0]), partitions
        ).run()
        group = lambda r: {
            frozenset(str(m) for m in c.members) for c in r.clusters
        }
        assert group(by_x) == {frozenset({"A0", "B0"}), frozenset({"A1", "B1"})}
        assert group(by_y) == {frozenset({"A0", "B1"}), frozenset({"A1", "B0"})}

    def test_per_holder_results(self):
        partitions = self._partitions()
        config = SessionConfig(
            num_clusters=2,
            per_holder_weights={"A": [1.0, 0.0], "B": [0.0, 1.0]},
        )
        results = ClusteringSession(config, partitions).run_per_holder()
        assert set(results) == {"A", "B"}
        group = lambda r: {
            frozenset(str(m) for m in c.members) for c in r.clusters
        }
        assert group(results["A"]) != group(results["B"])

    def test_weight_length_validated(self, mixed_partitions):
        config = SessionConfig(num_clusters=2, weights=[1.0])
        with pytest.raises(ConfigurationError):
            ClusteringSession(config, mixed_partitions).run()


class TestValidation:
    def test_single_holder_rejected(self, numeric_schema):
        with pytest.raises(ConfigurationError):
            ClusteringSession(
                SessionConfig(), {"A": DataMatrix(numeric_schema, [[1]])}
            )

    def test_tp_name_collision_rejected(self, numeric_schema):
        partitions = {
            "TP": DataMatrix(numeric_schema, [[1]]),
            "B": DataMatrix(numeric_schema, [[2]]),
        }
        with pytest.raises(ConfigurationError):
            ClusteringSession(SessionConfig(), partitions)

    def test_schema_mismatch_rejected(self, numeric_schema):
        other_schema = [AttributeSpec("other", AttributeType.NUMERIC)]
        partitions = {
            "A": DataMatrix(numeric_schema, [[1]]),
            "B": DataMatrix(other_schema, [[2]]),
        }
        with pytest.raises(ConfigurationError):
            ClusteringSession(SessionConfig(), partitions)

    def test_empty_site_rejected(self, numeric_schema):
        partitions = {
            "A": DataMatrix(numeric_schema, [[1]]),
            "B": DataMatrix(numeric_schema, []),
        }
        with pytest.raises(ConfigurationError):
            ClusteringSession(SessionConfig(), partitions)

    def test_bad_config_values(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(num_clusters=0)
        with pytest.raises(ConfigurationError):
            SessionConfig(linkage="not-a-method")
        with pytest.raises(ConfigurationError):
            ProtocolSuiteConfig(prng_kind="bogus")
        with pytest.raises(ConfigurationError):
            ProtocolSuiteConfig(mask_bits=8)
        with pytest.raises(ConfigurationError):
            ProtocolSuiteConfig(categorical_digest_size=64)


class TestDnaEndToEnd:
    def test_bird_flu_scenario(self):
        """The Section 1 motivating example, end to end."""
        ds = bird_flu(num_institutions=3, per_cluster=5, num_strains=3)
        session = ClusteringSession(
            SessionConfig(num_clusters=3, linkage="average"), ds.partitions
        )
        result = session.run()
        truth = ds.labels_in_global_order()
        predicted = result.labels_for(list(ds.index.refs()))
        assert adjusted_rand_index(truth, predicted) > 0.8
