"""Regression tests: secret material never escapes through human-readable
surfaces -- reprs, exception messages, or queue snapshots.

These pin the fixes the RL2xx secrecy lints forced (see DESIGN.md,
"Statically enforced invariants"): the lint proves no secret-*named*
value flows into those surfaces; these tests prove the concrete *values*
are absent at runtime.
"""

from __future__ import annotations

import pytest

from repro.core.config import SessionConfig
from repro.crypto.keys import fresh_group_key, secret_from_passphrase
from repro.crypto.paillier import generate_paillier_keypair
from repro.crypto.prng import make_prng
from repro.exceptions import CryptoError, ProtocolError
from repro.network.channel import Eavesdropper
from repro.network.simulator import Network


def _net() -> Network:
    net = Network()
    for name in ("A", "B"):
        net.add_party(name)
    net.connect("A", "B", secure=False)
    return net


class TestReprRedaction:
    def test_prng_repr_hides_seed(self):
        prng = make_prng(0xDEADBEEF)
        prng.next_bits(32)
        text = repr(prng)
        assert "<redacted>" in text
        assert "3735928559" not in text and "deadbeef" not in text.lower()
        # Structure stays: the draw counter is diagnostic, not secret.
        assert "draws=" in text

    def test_pairwise_secret_repr_hides_material(self):
        secret = secret_from_passphrase(("A", "B"), "super-secret-material")
        assert "super-secret-material" not in repr(secret)
        assert secret.secret not in repr(secret).encode("utf-8", "ignore")

    def test_session_config_repr_hides_master_seed(self):
        config = SessionConfig(master_seed=987654321)
        assert "987654321" not in repr(config)

    def test_paillier_private_material_hidden(self):
        keypair = generate_paillier_keypair(make_prng("redaction"), bits=128)
        pair_text = repr(keypair)
        private_text = repr(keypair.private_key)
        assert str(keypair.private_key.lam) not in pair_text
        assert str(keypair.private_key.lam) not in private_text
        assert str(keypair.private_key.mu) not in private_text

    def test_tapped_frame_repr_hides_wire_bytes(self):
        net = _net()
        tap = Eavesdropper("eve")
        net.attach_tap("A", "B", tap)
        net.send("A", "B", "k", {"value": "MARKER-PAYLOAD-XYZ"})
        (frame,) = tap.frames
        assert b"MARKER-PAYLOAD-XYZ" in frame.wire  # insecure link: tap sees it
        assert "MARKER-PAYLOAD-XYZ" not in repr(frame)  # ...but the repr never does
        assert frame.kind in repr(frame)


class TestExceptionRedaction:
    def test_queue_snapshot_names_lanes_not_payloads(self):
        net = _net()
        net.send("A", "B", "masked_vector", {"values": "MARKER-SECRET-123"}, tag="t1")
        net.send("A", "B", "masked_matrix", {"rows": "MARKER-SECRET-789"}, tag="t2")
        with pytest.raises(ProtocolError) as excinfo:
            net.receive("B", kind="other_kind")
        text = str(excinfo.value)
        # Diagnosable: the popped head's kind/sender and the remaining
        # queue's kind + lane tag are all named.
        assert "masked_vector" in text and "A" in text
        assert "masked_matrix" in text and "t2" in text
        # Sanitised: neither payload value is.
        assert "MARKER-SECRET-123" not in text
        assert "MARKER-SECRET-789" not in text

    def test_lane_miss_snapshot_is_sanitised(self):
        net = _net()
        net.send("A", "B", "k", ["MARKER-SECRET-456"], tag="lane-a")
        with pytest.raises(ProtocolError) as excinfo:
            net.receive("B", kind="k", sender="A", tag="lane-b")
        text = str(excinfo.value)
        assert "lane-a" in text
        assert "MARKER-SECRET-456" not in text

    def test_paillier_bound_error_hides_plaintext(self):
        keypair = generate_paillier_keypair(make_prng("bound"), bits=128)
        secret_value = keypair.public_key.max_plaintext * 7 + 13
        with pytest.raises(CryptoError) as excinfo:
            keypair.public_key.encrypt(secret_value, make_prng("r"))
        assert str(secret_value) not in str(excinfo.value)


class TestKeyDerivation:
    def test_fresh_group_key_is_deterministic_bytes(self):
        # The byte packing for key material lives in crypto/ (RL501); the
        # helper must stay a pure function of its PRNG stream.
        assert fresh_group_key(make_prng("gk")) == fresh_group_key(make_prng("gk"))
        key = fresh_group_key(make_prng("gk2"))
        assert isinstance(key, bytes) and len(key) == 32
