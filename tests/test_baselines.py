"""Tests for the three baselines: centralized, sanitization, Atallah."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.atallah import AtallahEditDistance
from repro.baselines.centralized import (
    centralized_attribute_matrix,
    centralized_pipeline,
)
from repro.baselines.sanitization import RotationSanitizer
from repro.clustering.linkage import agglomerative
from repro.clustering.quality import adjusted_rand_index
from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.crypto.prng import make_prng
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.data.partition import merge_partitions
from repro.data.synthetic import gaussian_clusters
from repro.distance.edit import edit_distance
from repro.distance.local import local_dissimilarity
from repro.exceptions import ConfigurationError
from repro.types import AttributeType


class TestCentralized:
    def test_attribute_matrix_types(self, mixed_partitions):
        pooled, _ = merge_partitions(mixed_partitions)
        for spec in pooled.schema:
            matrix = centralized_attribute_matrix(pooled, spec)
            assert matrix.num_objects == pooled.num_rows

    def test_pipeline_matches_session(self, mixed_partitions):
        session = ClusteringSession(SessionConfig(num_clusters=2), mixed_partitions)
        central, dendrogram, labels, index = centralized_pipeline(
            mixed_partitions, num_clusters=2
        )
        assert session.final_matrix().allclose(central, atol=0.0)
        assert labels is not None and len(labels) == index.total_objects

    def test_pipeline_without_cut(self, mixed_partitions):
        _, dendrogram, labels, _ = centralized_pipeline(mixed_partitions)
        assert labels is None
        assert dendrogram.num_leaves == 9


class TestSanitization:
    def _numeric_partition(self):
        rows, truth = gaussian_clusters([15, 15], dim=3, separation=10.0, seed=5)
        schema = [
            AttributeSpec(f"x{i}", AttributeType.NUMERIC, precision=15)
            for i in range(3)
        ]
        matrix = DataMatrix(schema, [[float(v) for v in r] for r in rows])
        return matrix, truth

    @staticmethod
    def _cluster_labels(matrix: DataMatrix, k: int) -> list[int]:
        data = np.asarray([[float(v) for v in row] for row in matrix.rows])
        square = np.linalg.norm(data[:, None] - data[None, :], axis=2)
        from repro.distance.dissimilarity import DissimilarityMatrix

        return agglomerative(
            DissimilarityMatrix.from_square(square), "average"
        ).cut_at_k(k)

    def test_pure_rotation_preserves_clustering(self):
        matrix, truth = self._numeric_partition()
        sanitized = RotationSanitizer(noise_scale=0.0, seed=1).sanitize(matrix)
        labels = self._cluster_labels(sanitized, 2)
        assert adjusted_rand_index(truth, labels) == 1.0

    def test_noise_degrades_accuracy(self):
        """The family's defining trade-off: more privacy noise, less
        accuracy -- the contrast with the paper's exact protocol."""
        matrix, truth = self._numeric_partition()
        heavy = RotationSanitizer(noise_scale=25.0, seed=1).sanitize(matrix)
        ari_heavy = adjusted_rand_index(truth, self._cluster_labels(heavy, 2))
        assert ari_heavy < 1.0

    def test_noise_monotonic_distortion(self):
        matrix, _ = self._numeric_partition()
        original = np.asarray([[float(v) for v in r] for r in matrix.rows])

        def distortion(scale: float) -> float:
            out = RotationSanitizer(noise_scale=scale, seed=2).sanitize(matrix)
            data = np.asarray([[float(v) for v in r] for r in out.rows])
            d0 = np.linalg.norm(original[:, None] - original[None, :], axis=2)
            d1 = np.linalg.norm(data[:, None] - data[None, :], axis=2)
            return float(np.abs(d0 - d1).mean())

        assert distortion(0.0) < distortion(1.0) < distortion(10.0)

    def test_rejects_non_numeric(self):
        schema = [AttributeSpec("s", AttributeType.CATEGORICAL)]
        matrix = DataMatrix(schema, [["a"]])
        with pytest.raises(ConfigurationError):
            RotationSanitizer().sanitize(matrix)

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            RotationSanitizer(noise_scale=-1.0)

    def test_deterministic(self):
        matrix, _ = self._numeric_partition()
        a = RotationSanitizer(noise_scale=0.5, seed=3).sanitize(matrix)
        b = RotationSanitizer(noise_scale=0.5, seed=3).sanitize(matrix)
        assert a == b


@pytest.fixture(scope="module")
def atallah():
    return AtallahEditDistance(
        DNA_ALPHABET, make_prng("alice"), make_prng("bob"), key_bits=256
    )


class TestAtallah:
    @pytest.mark.parametrize(
        "source,target",
        [
            ("ACGT", "AGT"),
            ("AAAA", "TTTT"),
            ("GATTACA", "GCAT"),
            ("A", ""),
            ("", "ACGT"),
            ("", ""),
            ("ACGT", "ACGT"),
        ],
    )
    def test_correctness(self, atallah, source, target):
        result = atallah.compute(source, target)
        assert result.distance == edit_distance(source, target)

    @given(
        s=st.text(alphabet="ACGT", max_size=6),
        t=st.text(alphabet="ACGT", max_size=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_correctness(self, atallah, s, t):
        assert atallah.compute(s, t).distance == edit_distance(s, t)

    def test_traffic_grows_with_input(self, atallah):
        short = atallah.compute("AC", "GT").traffic.total_bytes
        long = atallah.compute("ACGTACGT", "GTACGTAC").traffic.total_bytes
        assert long > 10 * short

    def test_ciphertext_count_matches_structure(self, atallah):
        n, m = 3, 4
        result = atallah.compute("ACG", "TTAA")
        # n*|A| indicator + n*m equality responses + 6 per DP cell.
        expected = n * 4 + n * m + 6 * n * m
        assert result.traffic.ciphertexts == expected

    def test_alphabet_enforced(self, atallah):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            atallah.compute("AXGT", "ACGT")

    def test_vastly_more_expensive_than_ccm_protocol(self, atallah):
        """The reason the paper cites [8] only to reject it (T-EDIT)."""
        from repro.analysis.comm_costs import measure_alphanumeric_protocol

        atallah_bytes = atallah.compute("ACGTACGT", "GTACGTAC").traffic.total_bytes
        ccm = measure_alphanumeric_protocol(1, 1, length=8)
        ccm_bytes = ccm["initiator_masked"] + ccm["responder_matrix"]
        assert atallah_bytes > 20 * ccm_bytes
