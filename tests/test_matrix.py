"""Tests for data matrices and schemas."""

from __future__ import annotations

import pytest

from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix, Schema
from repro.exceptions import SchemaError
from repro.types import AttributeType


class TestAttributeSpec:
    def test_numeric_accepts_numbers(self):
        spec = AttributeSpec("age", AttributeType.NUMERIC)
        spec.validate_value(5)
        spec.validate_value(1.5)

    def test_numeric_rejects_bool_and_str(self):
        spec = AttributeSpec("age", AttributeType.NUMERIC)
        with pytest.raises(SchemaError):
            spec.validate_value(True)
        with pytest.raises(SchemaError):
            spec.validate_value("5")

    def test_alphanumeric_gets_default_alphabet(self):
        spec = AttributeSpec("name", AttributeType.ALPHANUMERIC)
        assert spec.alphabet is not None
        spec.validate_value("Hello World!")

    def test_alphanumeric_respects_custom_alphabet(self):
        spec = AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET)
        spec.validate_value("ACGT")
        with pytest.raises(SchemaError):
            spec.validate_value("XYZ")

    def test_alphabet_on_numeric_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSpec("age", AttributeType.NUMERIC, alphabet=DNA_ALPHABET)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSpec("", AttributeType.NUMERIC)

    @pytest.mark.parametrize("precision", [-1, 16])
    def test_precision_bounds(self, precision):
        with pytest.raises(SchemaError):
            AttributeSpec("x", AttributeType.NUMERIC, precision=precision)

    def test_categorical_accepts_strings(self):
        spec = AttributeSpec("city", AttributeType.CATEGORICAL)
        spec.validate_value("istanbul")
        with pytest.raises(SchemaError):
            spec.validate_value(3)


class TestSchema:
    def test_basic(self):
        schema = Schema(
            [
                AttributeSpec("a", AttributeType.NUMERIC),
                AttributeSpec("b", AttributeType.CATEGORICAL),
            ]
        )
        assert len(schema) == 2
        assert schema.names == ("a", "b")
        assert schema.index_of("b") == 1
        assert schema.spec("a").attr_type is AttributeType.NUMERIC

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [
                    AttributeSpec("a", AttributeType.NUMERIC),
                    AttributeSpec("a", AttributeType.CATEGORICAL),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_unknown_name(self):
        schema = Schema([AttributeSpec("a", AttributeType.NUMERIC)])
        with pytest.raises(SchemaError):
            schema.index_of("z")

    def test_equality_and_hash(self):
        a1 = Schema([AttributeSpec("a", AttributeType.NUMERIC)])
        a2 = Schema([AttributeSpec("a", AttributeType.NUMERIC)])
        b = Schema([AttributeSpec("b", AttributeType.NUMERIC)])
        assert a1 == a2 and hash(a1) == hash(a2)
        assert a1 != b


class TestDataMatrix:
    SCHEMA = [
        AttributeSpec("age", AttributeType.NUMERIC),
        AttributeSpec("city", AttributeType.CATEGORICAL),
    ]

    def test_from_rows(self):
        m = DataMatrix.from_rows(self.SCHEMA, [[30, "x"], [40, "y"]])
        assert m.num_rows == 2
        assert m.num_attributes == 2
        assert m.row(1) == (40, "y")

    def test_column_access(self):
        m = DataMatrix.from_rows(self.SCHEMA, [[30, "x"], [40, "y"]])
        assert m.column(0) == [30, 40]
        assert m.column_by_name("city") == ["x", "y"]
        with pytest.raises(SchemaError):
            m.column(5)

    def test_ragged_row_rejected(self):
        with pytest.raises(SchemaError):
            DataMatrix.from_rows(self.SCHEMA, [[30]])

    def test_bad_cell_rejected_with_row_context(self):
        with pytest.raises(SchemaError, match="row 1"):
            DataMatrix.from_rows(self.SCHEMA, [[30, "x"], ["oops", "y"]])

    def test_from_columns(self):
        m = DataMatrix.from_columns(self.SCHEMA, [[30, 40], ["x", "y"]])
        assert m.rows == ((30, "x"), (40, "y"))

    def test_from_columns_ragged_rejected(self):
        with pytest.raises(SchemaError):
            DataMatrix.from_columns(self.SCHEMA, [[30, 40], ["x"]])

    def test_from_columns_count_mismatch(self):
        with pytest.raises(SchemaError):
            DataMatrix.from_columns(self.SCHEMA, [[30, 40]])

    def test_take(self):
        m = DataMatrix.from_rows(self.SCHEMA, [[1, "a"], [2, "b"], [3, "c"]])
        sub = m.take([2, 0])
        assert sub.rows == ((3, "c"), (1, "a"))

    def test_concat(self):
        a = DataMatrix.from_rows(self.SCHEMA, [[1, "a"]])
        b = DataMatrix.from_rows(self.SCHEMA, [[2, "b"]])
        assert a.concat(b).num_rows == 2

    def test_concat_schema_mismatch(self):
        a = DataMatrix.from_rows(self.SCHEMA, [[1, "a"]])
        other = DataMatrix.from_rows(
            [AttributeSpec("z", AttributeType.NUMERIC)], [[1]]
        )
        with pytest.raises(SchemaError):
            a.concat(other)

    def test_equality(self):
        a = DataMatrix.from_rows(self.SCHEMA, [[1, "a"]])
        b = DataMatrix.from_rows(self.SCHEMA, [[1, "a"]])
        assert a == b and hash(a) == hash(b)

    def test_iteration(self):
        m = DataMatrix.from_rows(self.SCHEMA, [[1, "a"], [2, "b"]])
        assert list(m) == [(1, "a"), (2, "b")]
        assert len(m) == 2

    def test_empty_matrix_allowed(self):
        m = DataMatrix.from_rows(self.SCHEMA, [])
        assert m.num_rows == 0
