"""Tests for the attack harnesses (Section 4.1's security analysis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.eavesdrop import (
    initiator_eavesdrop_responder_values,
    tp_eavesdrop_initiator_candidates,
    tp_eavesdrop_responder_candidates,
)
from repro.attacks.frequency import FrequencyAttack
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.numeric import (
    initiator_mask_batch,
    initiator_mask_per_pair,
    responder_matrix_batch,
    responder_matrix_per_pair,
)
from repro.core.session import ClusteringSession
from repro.core import labels as label_grammar
from repro.crypto.prng import make_prng
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.exceptions import AttackError, ChannelError
from repro.network.channel import Eavesdropper
from repro.types import AttributeType

MASK_BITS = 64


def _residual_matrix_batch(values_j, values_k, seed_jk, seed_jt):
    """What the TP can compute in batch mode: s minus regenerated masks."""
    rng_jk_j, rng_jt_j = make_prng(seed_jk), make_prng(seed_jt)
    masked = initiator_mask_batch(values_j, rng_jk_j, rng_jt_j, MASK_BITS)
    matrix = responder_matrix_batch(values_k, masked, make_prng(seed_jk))
    rng_jt_tp = make_prng(seed_jt)
    residuals = []
    for row in matrix:
        residuals.append([entry - rng_jt_tp.next_bits(MASK_BITS) for entry in row])
        rng_jt_tp.reset()
    return np.asarray(residuals, dtype=object).astype(np.int64)


def _residual_matrix_per_pair(values_j, values_k, seed_jk, seed_jt):
    rng_jk_j, rng_jt_j = make_prng(seed_jk), make_prng(seed_jt)
    masked = initiator_mask_per_pair(
        values_j, len(values_k), rng_jk_j, rng_jt_j, MASK_BITS
    )
    matrix = responder_matrix_per_pair(values_k, masked, make_prng(seed_jk))
    rng_jt_tp = make_prng(seed_jt)
    residuals = []
    for row in matrix:
        residuals.append([entry - rng_jt_tp.next_bits(MASK_BITS) for entry in row])
    return np.asarray(residuals, dtype=object).astype(np.int64)


class TestFrequencyAttack:
    def test_batch_mode_recovers_private_vector(self):
        """The paper's warning, demonstrated: small domain + batch mode
        lets the TP recover DHK's private values exactly."""
        values_j = [2, 9, 5, 0, 7, 3]
        values_k = [1, 8, 3, 3, 0, 9, 5, 2]
        residuals = _residual_matrix_batch(values_j, values_k, 11, 22)
        outcome = FrequencyAttack(0, 9).run(residuals)
        assert outcome.exact_recovery_rate(values_k) == 1.0

    def test_mitigation_defeats_attack(self):
        """Per-pair unique randoms: the same attack recovers ~nothing.

        A single seed occasionally hands the attacker a lucky sign
        pattern, so the claim is asserted on the average over a fixed
        seed sweep: batch mode recovers everything (1.0 above), the
        mitigation must stay well below that.
        """
        values_j = [2, 9, 5, 0, 7, 3]
        values_k = [1, 8, 3, 3, 0, 9, 5, 2]
        rates = []
        for seed in range(1, 17):
            residuals = _residual_matrix_per_pair(
                values_j, values_k, 11 * seed, 11 * seed + 11
            )
            outcome = FrequencyAttack(0, 9).run(residuals)
            rates.append(outcome.exact_recovery_rate(values_k))
        assert float(np.mean(rates)) < 0.5

    def test_larger_domain_weakens_attack(self):
        """More admissible hypotheses survive as the domain grows."""
        values_j = [50]
        values_k = [40, 60, 55]
        residuals = _residual_matrix_batch(values_j, values_k, 1, 2)
        small = FrequencyAttack(35, 65).run(residuals)
        large = FrequencyAttack(0, 1000).run(residuals)
        assert large.surviving_hypotheses > small.surviving_hypotheses

    def test_prior_sharpens_ranking(self):
        values_j = [3]
        values_k = [0, 0, 0, 9]
        residuals = _residual_matrix_batch(values_j, values_k, 5, 6)
        prior = {0: 0.75, 9: 0.25}
        outcome = FrequencyAttack(0, 9, prior=prior).run(residuals)
        assert outcome.recovered is not None

    def test_empty_domain_rejected(self):
        with pytest.raises(AttackError):
            FrequencyAttack(5, 4)

    def test_bad_prior_rejected(self):
        with pytest.raises(AttackError):
            FrequencyAttack(0, 9, prior={1: 0.0})

    def test_non_2d_rejected(self):
        with pytest.raises(AttackError):
            FrequencyAttack(0, 9).run(np.zeros(3))

    def test_no_surviving_hypothesis(self):
        """Residuals implying out-of-domain values yield no recovery."""
        residuals = np.array([[10**6]], dtype=np.int64)
        outcome = FrequencyAttack(0, 9).run(residuals)
        assert outcome.recovered is None
        assert outcome.exact_recovery_rate([5]) == 0.0


def _run_tapped_session(secure: bool):
    """Two-holder numeric session with taps on both §4.1 channels."""
    schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
    partitions = {
        "J": DataMatrix(schema, [[13], [42], [7]]),
        "K": DataMatrix(schema, [[20], [5]]),
    }
    suite = ProtocolSuiteConfig(secure_channels=secure)
    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=3, suite=suite), partitions
    )
    tap = Eavesdropper("mallory")
    session.network.attach_tap("J", "K", tap)
    session.network.attach_tap("K", "TP", tap)
    session.execute_protocol()
    return session, tap


class TestEavesdropAttacks:
    def test_tp_recovers_initiator_candidates_on_insecure_channel(self):
        session, tap = _run_tapped_session(secure=False)
        frame = next(f for f in tap.frames if f.kind == "masked_vector")
        rng_jt = session.third_party.secret_with("J").prng(
            label_grammar.numeric_jt("v", "J", "K"), "hash_drbg"
        )
        candidates = tp_eavesdrop_initiator_candidates(frame, rng_jt, 64)
        truth = [13, 42, 7]
        for value, pair in zip(truth, candidates):
            assert value in pair

    def test_tp_narrows_responder_to_four_candidates(self):
        session, tap = _run_tapped_session(secure=False)
        vector_frame = next(f for f in tap.frames if f.kind == "masked_vector")
        matrix_frame = next(f for f in tap.frames if f.kind == "comparison_matrix")
        rng_jt = session.third_party.secret_with("J").prng(
            label_grammar.numeric_jt("v", "J", "K"), "hash_drbg"
        )
        x_candidates = tp_eavesdrop_initiator_candidates(vector_frame, rng_jt, 64)
        y_candidates = tp_eavesdrop_responder_candidates(
            matrix_frame, x_candidates, rng_jt, 64
        )
        for truth, candidates in zip([20, 5], y_candidates):
            assert truth in candidates
            assert len(candidates) <= 4

    def test_initiator_recovers_responder_exactly(self):
        """DHJ knows masks, signs and its own inputs -> exact recovery."""
        session, tap = _run_tapped_session(secure=False)
        matrix_frame = next(f for f in tap.frames if f.kind == "comparison_matrix")
        holder = session.holders["J"]
        rng_jk = holder.secret_with("K").prng(
            label_grammar.numeric_jk("v", "J", "K"), "hash_drbg"
        )
        rng_jt = holder.secret_with("TP").prng(
            label_grammar.numeric_jt("v", "J", "K"), "hash_drbg"
        )
        recovered = initiator_eavesdrop_responder_values(
            matrix_frame, [13, 42, 7], rng_jk, rng_jt, 64
        )
        assert recovered == [20, 5]

    def test_secured_channels_defeat_both_attacks(self):
        _session, tap = _run_tapped_session(secure=True)
        assert tap.frames  # traffic still visible, but sealed
        for frame in tap.frames:
            assert frame.sealed
            with pytest.raises(ChannelError):
                frame.try_read_payload()

    def test_wrong_kind_frame_rejected(self):
        _session, tap = _run_tapped_session(secure=False)
        local_frame = next(f for f in tap.frames if f.kind == "comparison_matrix")
        with pytest.raises(AttackError):
            tp_eavesdrop_initiator_candidates(local_frame, make_prng(1), 64)
