"""Socket transport unit tests: frames, link ciphers, liveness, resume.

Exercises the pieces of :mod:`repro.network.tcp` and
:mod:`repro.network.handshake` in isolation -- address parsing, the
control-frame codec, per-link sealing lockstep, retry-policy validation,
lane abandonment accounting -- and then drives real two-endpoint unix
meshes through the liveness state machine: transient disconnects with
replay, corruption recovery, outbox bounds, permanent death, and the
era-reset protocol a supervisor restart triggers.
"""

from __future__ import annotations

import tempfile
import threading

import pytest

import repro.network.handshake as hs
from repro.crypto.sym import SymmetricCipher
from repro.core.session import session_entropy
from repro.exceptions import (
    ChannelError,
    ConfigurationError,
    IntegrityError,
    LaneTimeoutError,
    PartyCrashError,
    SessionResetError,
)
from repro.network.faults import FaultPlan, FaultRule
from repro.network.retry import RetryPolicy
from repro.network.simulator import Network
from repro.network.tcp import DEAD, UP, SocketTransport, parse_address
from repro.parties.runner import SessionLinkSecurity

FINGERPRINT = b"\x07" * 32


# -- address parsing ---------------------------------------------------------


class TestParseAddress:
    def test_unix(self):
        assert parse_address("unix:/tmp/a.sock") == ("unix", "/tmp/a.sock", 0)

    def test_tcp(self):
        assert parse_address("tcp:127.0.0.1:9000") == ("tcp", "127.0.0.1", 9000)

    @pytest.mark.parametrize(
        "bad", ["unix:", "tcp:host", "tcp::123", "tcp:host:port", "http://x"]
    )
    def test_malformed(self, bad):
        with pytest.raises(ChannelError):
            parse_address(bad)


# -- control frames ----------------------------------------------------------


class TestControlFrames:
    def test_hello_round_trip(self):
        frame = hs.hello_frame("alpha", 2, FINGERPRINT, 4, 17)
        hello = hs.parse_hello(frame)
        assert hello == hs.Hello("alpha", 2, FINGERPRINT, 4, 17)
        # Secrets-adjacent fields stay out of repr.
        assert "fingerprint" not in repr(hello) or FINGERPRINT.hex() not in repr(hello)

    def test_data_round_trip_and_body_last(self):
        frame = hs.data_frame(3, 5, "blob", "t", b"sealed")
        assert list(frame) == ["t", "seq", "era", "kind", "tag", "body"]
        parsed = hs.parse_data(frame)
        assert (parsed.seq, parsed.era, parsed.kind, parsed.tag) == (3, 5, "blob", "t")
        assert parsed.body == b"sealed"

    def test_ack_heartbeat_dh(self):
        assert hs.parse_ack(hs.ack_frame(9, 2)) == hs.Ack(9, 2)
        assert hs.parse_heartbeat(hs.heartbeat_frame(3)) == hs.Heartbeat(3)
        assert hs.parse_dh(hs.dh_frame("beta", 12345)).public == 12345

    def test_frame_type_requires_discriminator(self):
        with pytest.raises(ChannelError, match="discriminator"):
            hs.frame_type({"seq": 1})
        with pytest.raises(ChannelError, match="discriminator"):
            hs.frame_type([1, 2])

    def test_bool_is_not_a_counter(self):
        frame = hs.ack_frame(1, 1)
        frame["seq"] = True
        with pytest.raises(ChannelError, match="seq"):
            hs.parse_ack(frame)

    def test_missing_field(self):
        frame = hs.hello_frame("a", 1, FINGERPRINT, 2, 0)
        del frame["delivered"]
        with pytest.raises(ChannelError, match="delivered"):
            hs.parse_hello(frame)

    def test_fingerprint_check(self):
        hello = hs.parse_hello(hs.hello_frame("a", 1, FINGERPRINT, 2, 0))
        hs.check_fingerprint(FINGERPRINT, hello)
        with pytest.raises(ChannelError, match="different session"):
            hs.check_fingerprint(b"\x00" * 32, hello)


# -- per-link sealing --------------------------------------------------------


def _cipher_pair():
    """Two endpoints of one secure link with independent entropy copies."""
    key = b"k" * 32
    return (
        hs.LinkCipher(("a", "b"), key=key, entropy=session_entropy(5, "nonce|a|b")),
        hs.LinkCipher(("a", "b"), key=key, entropy=session_entropy(5, "nonce|a|b")),
    )


class TestLinkCipher:
    def test_pair_is_normalised(self):
        assert hs.LinkCipher(("b", "a")).pair == ("a", "b")
        with pytest.raises(ChannelError):
            hs.LinkCipher(("a", "a"))

    def test_insecure_passthrough(self):
        cipher = hs.LinkCipher(("a", "b"))
        assert not cipher.secure
        assert cipher.nonce_draws is None
        assert cipher.open(cipher.seal(b"plain")) == b"plain"

    def test_secure_requires_entropy(self):
        with pytest.raises(ChannelError, match="nonce entropy"):
            hs.LinkCipher(("a", "b"), key=b"k" * 32)

    def test_seal_open_stay_in_lockstep(self):
        sender, receiver = _cipher_pair()
        for i in range(3):
            sealed = sender.seal(b"msg%d" % i)
            assert receiver.open(sealed) == b"msg%d" % i
            # Both streams advanced NONCE_WORDS per frame, in sync.
            assert sender.nonce_draws == receiver.nonce_draws == (
                (i + 1) * hs.LinkCipher.NONCE_WORDS
            )

    def test_integrity_failure_does_not_advance(self):
        sender, receiver = _cipher_pair()
        sealed = sender.seal(b"payload")
        tampered = sealed[:-1] + bytes([sealed[-1] ^ 0xFF])
        with pytest.raises(IntegrityError):
            receiver.open(tampered)
        assert receiver.nonce_draws == 0
        # The replayed original must still open at the same position.
        assert receiver.open(sealed) == b"payload"

    def test_advance_refuses_rewind(self):
        sender, _ = _cipher_pair()
        sender.seal(b"x")
        with pytest.raises(ChannelError, match="rewind"):
            sender.advance(0)
        sender.advance(sender.nonce_draws)  # no-op is fine
        sender.advance(sender.nonce_draws + 2)

    def test_insecure_advance_rejected(self):
        with pytest.raises(ChannelError, match="no nonce stream"):
            hs.LinkCipher(("a", "b")).advance(2)

    def test_seal_payload_serializes(self):
        sender, receiver = _cipher_pair()
        from repro.network.serialization import deserialize

        assert deserialize(receiver.open(sender.seal_payload({"v": 1}))) == {"v": 1}


# -- retry policy validation (construction-time) -----------------------------


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        RetryPolicy()

    def test_max_attempts_positive(self):
        with pytest.raises(ConfigurationError, match="max_attempts must be >= 1"):
            RetryPolicy(max_attempts=0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_backoff_base_must_be_finite(self, bad):
        with pytest.raises(ConfigurationError, match="must be finite"):
            RetryPolicy(backoff_base=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("-inf")])
    def test_backoff_cap_must_be_finite(self, bad):
        with pytest.raises(ConfigurationError, match="must be finite"):
            RetryPolicy(backoff_cap=bad)

    def test_backoff_must_be_non_negative(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            RetryPolicy(backoff_base=-0.1)

    def test_deadline_must_be_finite(self):
        with pytest.raises(
            ConfigurationError, match="deadline must be finite"
        ):
            RetryPolicy(deadline=float("inf"))

    @pytest.mark.parametrize("bad", [0.0, -3.0])
    def test_deadline_must_be_positive(self, bad):
        with pytest.raises(ConfigurationError, match="deadline must be > 0"):
            RetryPolicy(deadline=bad)

    def test_backoff_delay_caps(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_cap=0.03)
        assert policy.backoff_delay(1) == 0.01
        assert policy.backoff_delay(2) == 0.02
        assert policy.backoff_delay(10) == 0.03
        with pytest.raises(ConfigurationError, match="attempt must be >= 1"):
            policy.backoff_delay(0)


# -- lane abandonment purges pending state -----------------------------------


def _dead_lane_net(**kw):
    plan = FaultPlan(seed=1, drop=1.0, fault_retransmits=True)
    net = Network(fault_plan=plan, retry=RetryPolicy(max_attempts=3, **kw))
    for party in ("A", "B"):
        net.add_party(party)
    net.connect("A", "B", secure=False)
    return net


class TestLaneAbandonment:
    def test_timeout_purges_the_whole_lane(self):
        net = _dead_lane_net()
        net.send("A", "B", "blob", 1, tag="t")
        net.send("A", "B", "blob", 2, tag="t")
        with pytest.raises(LaneTimeoutError):
            net.receive("B", kind="blob", sender="A", tag="t")
        # The dead head AND the frame queued behind it are gone: the
        # network reports clean instead of leaking placeholders.
        assert net.pending("B") == 0
        net.assert_drained()
        assert net.reliability_stats()["frames_abandoned"] == 2

    def test_other_lanes_survive_the_purge(self):
        # Only the "blob" lane is lossy; "other" frames pass untouched.
        plan = FaultPlan(
            seed=1,
            rules=[FaultRule(kind="blob", drop=1.0)],
            fault_retransmits=True,
        )
        net = Network(fault_plan=plan, retry=RetryPolicy(max_attempts=3))
        for party in ("A", "B"):
            net.add_party(party)
        net.connect("A", "B", secure=False)
        net.send("A", "B", "blob", 1, tag="dead")
        net.send("A", "B", "other", 2, tag="alive")
        with pytest.raises(LaneTimeoutError):
            net.receive("B", kind="blob", sender="A", tag="dead")
        assert net.reliability_stats()["frames_abandoned"] == 1
        assert net.receive("B", kind="other", sender="A", tag="alive").payload == 2
        net.assert_drained()


# -- two-endpoint socket meshes ----------------------------------------------


def _mesh(names=("alpha", "beta"), seed=11, **kw):
    tmp = tempfile.mkdtemp()
    addresses = {
        name: f"unix:{tmp}/{name}.sock" for name in names
    }
    kw.setdefault("heartbeat_interval", 0.05)
    transports = {
        name: SocketTransport(
            name,
            addresses,
            SessionLinkSecurity(seed, name),
            FINGERPRINT,
            **kw,
        )
        for name in names
    }
    threads = [
        threading.Thread(target=t.connect_all, args=(20.0,))
        for t in transports.values()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=25.0)
    return transports


def _close_all(transports):
    for transport in transports.values():
        transport.close()


class TestSocketTransport:
    def test_round_trip_and_transcript(self):
        mesh = _mesh()
        try:
            alpha, beta = mesh["alpha"], mesh["beta"]
            assert alpha.liveness("beta") == UP
            alpha.send("alpha", "beta", "blob", {"v": 41}, tag="t")
            message = beta.receive("beta", kind="blob", sender="alpha", tag="t")
            assert message.payload == {"v": 41}
            assert message.sealed
            (entry,) = alpha.transcript()
            era, recipient, kind, tag, digest = entry
            assert (era, recipient, kind, tag) == (2, "beta", "blob", "t")
            assert len(digest) == 64
            assert beta.pending("beta") == 0
        finally:
            _close_all(mesh)

    def test_shared_secrets_match_across_endpoints(self):
        mesh = _mesh()
        try:
            assert (
                mesh["alpha"].shared_secrets()["beta"]
                == mesh["beta"].shared_secrets()["alpha"]
            )
            assert mesh["alpha"].cipher_positions() == mesh["beta"].cipher_positions()
        finally:
            _close_all(mesh)

    def test_wrong_endpoint_roles_rejected(self):
        mesh = _mesh()
        try:
            with pytest.raises(ChannelError, match="sends as"):
                mesh["alpha"].send("beta", "alpha", "blob", 1)
            with pytest.raises(ChannelError, match="receives as"):
                mesh["alpha"].receive("beta")
            with pytest.raises(ChannelError, match="requires kind and sender"):
                mesh["alpha"].receive("alpha", tag="t")
        finally:
            _close_all(mesh)

    def test_receive_deadline_is_structured(self):
        mesh = _mesh(receive_deadline=0.2)
        try:
            with pytest.raises(LaneTimeoutError) as exc:
                mesh["beta"].receive("beta", kind="blob", sender="alpha", tag="t")
            assert exc.value.recipient == "beta"
            assert "deadline" in str(exc.value)
        finally:
            _close_all(mesh)

    def test_transient_disconnect_replays_unacked_frames(self):
        mesh = _mesh()
        try:
            alpha, beta = mesh["alpha"], mesh["beta"]
            alpha.send("alpha", "beta", "blob", 1, tag="t")
            assert beta.receive("beta", kind="blob", sender="alpha", tag="t").payload == 1
            alpha.debug_drop_connection("beta")
            # Sends while the link is down wait in the outbox; the
            # reconnect handshake replays exactly the unacked tail.
            alpha.send("alpha", "beta", "blob", 2, tag="t")
            alpha.send("alpha", "beta", "blob", 3, tag="t")
            assert beta.receive("beta", kind="blob", sender="alpha", tag="t").payload == 2
            assert beta.receive("beta", kind="blob", sender="alpha", tag="t").payload == 3
            # Same era throughout: a transient drop is not a reset.
            assert alpha.era == beta.era == 2
        finally:
            _close_all(mesh)

    def test_corrupted_frame_recovers_by_replay(self):
        mesh = _mesh()
        try:
            alpha, beta = mesh["alpha"], mesh["beta"]
            alpha.debug_corrupt_next("beta")
            alpha.send("alpha", "beta", "blob", {"v": 5}, tag="t")
            # The tampered frame fails authentication at beta, the
            # connection tears down, and the reconnect replay delivers
            # the original bytes -- which must open at the same nonce.
            message = beta.receive("beta", kind="blob", sender="alpha", tag="t")
            assert message.payload == {"v": 5}
        finally:
            _close_all(mesh)

    def test_outbox_overflow_is_bounded(self):
        mesh = _mesh(outbox_limit=3, dead_after=60.0)
        try:
            alpha, beta = mesh["alpha"], mesh["beta"]
            beta.close()
            sent = 0
            with pytest.raises(ChannelError, match="outbox .* overflowed"):
                # The peer is gone and acks stop, so the bounded replay
                # buffer must refuse the fourth unacked frame.
                for i in range(10):
                    alpha.send("alpha", "beta", "blob", i, tag="t")
                    sent += 1
            assert sent == 3
        finally:
            mesh["alpha"].close()

    def test_permanent_death_is_sticky(self):
        mesh = _mesh(
            dead_after=0.3,
            reconnect=RetryPolicy(max_attempts=2, backoff_base=0.01, backoff_cap=0.02),
        )
        try:
            alpha, beta = mesh["alpha"], mesh["beta"]
            beta.close()
            deadline = 100
            while alpha.liveness("beta") != DEAD and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            assert alpha.liveness("beta") == DEAD
            with pytest.raises(PartyCrashError) as exc:
                alpha.send("alpha", "beta", "blob", 1)
            assert exc.value.party == "beta"
            with pytest.raises(PartyCrashError):
                alpha.receive("alpha", kind="blob", sender="beta")
            transitions = [t for t in alpha.liveness_log() if t[0] == "beta"]
            assert transitions[-1][2] == DEAD
        finally:
            mesh["alpha"].close()

    def test_restart_triggers_era_reset(self):
        tmp = tempfile.mkdtemp()
        addresses = {n: f"unix:{tmp}/{n}.sock" for n in ("alpha", "beta")}

        def build(name, incarnation=1):
            return SocketTransport(
                name,
                addresses,
                SessionLinkSecurity(11, name),
                FINGERPRINT,
                incarnation=incarnation,
                heartbeat_interval=0.05,
            )

        alpha, beta = build("alpha"), build("beta")
        threads = [
            threading.Thread(target=t.connect_all, args=(20.0,))
            for t in (alpha, beta)
        ]
        [t.start() for t in threads]
        [t.join(timeout=25.0) for t in threads]
        try:
            alpha.send("alpha", "beta", "blob", 1, tag="t")
            assert beta.receive("beta", kind="blob", sender="alpha", tag="t").payload == 1
            positions = alpha.cipher_positions()
            # Supervisor "restarts" beta with a bumped incarnation.
            beta.close()
            beta = build("beta", incarnation=2)
            restart = threading.Thread(target=beta.connect_all, args=(20.0,))
            restart.start()
            # Alpha's next protocol action surfaces the reset...
            with pytest.raises(SessionResetError) as exc:
                for _ in range(200):
                    alpha.send("alpha", "beta", "blob", 2, tag="t")
                    threading.Event().wait(0.05)
            assert exc.value.trigger_party == "beta"
            assert exc.value.era == 3
            # ...and begin_era() enters the new one with rebuilt ciphers.
            alpha.begin_era(positions)
            restart.join(timeout=25.0)
            assert alpha.era == beta.era == 3
            beta.advance_cipher_positions(positions)
            alpha.send("alpha", "beta", "blob", 9, tag="t")
            assert beta.receive("beta", kind="blob", sender="alpha", tag="t").payload == 9
            with pytest.raises(ChannelError, match="no session reset"):
                alpha.begin_era()
        finally:
            alpha.close()
            beta.close()

    def test_constructor_validation(self):
        security = SessionLinkSecurity(1, "a")
        with pytest.raises(ChannelError, match="missing from the address map"):
            SocketTransport("a", {"b": "unix:/tmp/b.sock"}, security, FINGERPRINT)
        with pytest.raises(ChannelError, match="at least two"):
            SocketTransport("a", {"a": "unix:/tmp/a.sock"}, security, FINGERPRINT)
        with pytest.raises(ChannelError, match="incarnation"):
            SocketTransport(
                "a",
                {"a": "unix:/tmp/a.sock", "b": "unix:/tmp/b.sock"},
                security,
                FINGERPRINT,
                incarnation=0,
            )
