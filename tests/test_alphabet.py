"""Tests for finite alphabets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.alphabet import (
    DNA_ALPHABET,
    FIGURE7_ALPHABET,
    PRINTABLE_ALPHABET,
    Alphabet,
)
from repro.exceptions import SchemaError


class TestConstruction:
    def test_size(self):
        assert Alphabet("abc").size == 3
        assert DNA_ALPHABET.size == 4

    def test_duplicate_characters_rejected(self):
        with pytest.raises(SchemaError):
            Alphabet("aab")

    def test_too_small_rejected(self):
        with pytest.raises(SchemaError):
            Alphabet("a")

    def test_builtin_alphabets(self):
        assert DNA_ALPHABET.characters == "ACGT"
        assert FIGURE7_ALPHABET.characters == "abcd"
        assert PRINTABLE_ALPHABET.size == 95


class TestCodec:
    def test_index_char_roundtrip(self):
        a = Alphabet("xyz")
        for i, ch in enumerate("xyz"):
            assert a.index(ch) == i
            assert a.char(i) == ch

    def test_char_wraps_modulo(self):
        a = Alphabet("abcd")
        assert a.char(5) == "b"
        assert a.char(-1) == "d"

    def test_unknown_char_raises(self):
        with pytest.raises(SchemaError):
            DNA_ALPHABET.index("X")

    def test_encode_decode(self):
        assert DNA_ALPHABET.encode("GATT") == [2, 0, 3, 3]
        assert DNA_ALPHABET.decode([2, 0, 3, 3]) == "GATT"

    def test_membership(self):
        assert "A" in DNA_ALPHABET
        assert "Z" not in DNA_ALPHABET

    def test_validate(self):
        DNA_ALPHABET.validate("ACGT")
        with pytest.raises(SchemaError):
            DNA_ALPHABET.validate("ACGU")


class TestShifting:
    def test_figure7_shift(self):
        """The paper's Figure 7: 'abc' + (0,1,3) -> 'acb' over {a,b,c,d}."""
        a = FIGURE7_ALPHABET
        masked = [a.shift_char(ch, r) for ch, r in zip("abc", (0, 1, 3))]
        assert "".join(masked) == "acb"

    def test_shift_unshift_inverse(self):
        a = DNA_ALPHABET
        for ch in "ACGT":
            for offset in range(-5, 9):
                shifted = a.shift_char(ch, offset)
                assert a.unshift_code(a.index(shifted), offset) == a.index(ch)

    @given(
        text=st.text(alphabet="ACGT", max_size=30),
        offsets=st.lists(st.integers(0, 3), min_size=30, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_masking_bijective(self, text, offsets):
        a = DNA_ALPHABET
        masked = [a.shift_char(ch, off) for ch, off in zip(text, offsets)]
        recovered = [
            a.char(a.unshift_code(a.index(m), off)) for m, off in zip(masked, offsets)
        ]
        assert "".join(recovered) == text
