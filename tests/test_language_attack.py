"""Tests for the language-statistics attack and the fresh-masks defence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.language import LanguageStatisticsAttack
from repro.baselines.centralized import centralized_pipeline
from repro.core.alphanumeric import (
    initiator_mask_strings,
    initiator_mask_strings_fresh,
    responder_ccm_matrices,
    third_party_distances_fresh,
)
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.crypto.prng import make_prng
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.data.synthetic import skewed_strings
from repro.distance.edit import edit_distance
from repro.exceptions import AttackError, ConfigurationError
from repro.types import AttributeType

#: Strongly skewed DNA base frequencies (the "statistics of the input
#: language" the paper's Section 6 worries about).
SKEW = [0.55, 0.25, 0.12, 0.08]
PRIOR = dict(zip("ACGT", SKEW))


def _true_offsets(seed: int, length: int) -> list[int]:
    rng = make_prng(seed)
    return [rng.next_below(DNA_ALPHABET.size) for _ in range(length)]


class TestAttackOnPaperScheme:
    def test_mask_vector_recovered(self):
        corpus = skewed_strings(96, 24, SKEW, seed=1)
        masked = initiator_mask_strings(corpus, DNA_ALPHABET, make_prng(42))
        attack = LanguageStatisticsAttack(DNA_ALPHABET, PRIOR)
        outcome = attack.run(masked)
        true_offsets = _true_offsets(42, 24)
        assert outcome.offset_recovery_rate(true_offsets) > 0.9

    def test_corpus_unmasked(self):
        corpus = skewed_strings(96, 24, SKEW, seed=2)
        masked = initiator_mask_strings(corpus, DNA_ALPHABET, make_prng(43))
        outcome = LanguageStatisticsAttack(DNA_ALPHABET, PRIOR).run(masked)
        assert outcome.character_recovery_rate(corpus) > 0.9

    def test_attack_weakens_with_few_samples(self):
        corpus = skewed_strings(6, 24, SKEW, seed=3)
        masked = initiator_mask_strings(corpus, DNA_ALPHABET, make_prng(44))
        outcome = LanguageStatisticsAttack(DNA_ALPHABET, PRIOR, min_samples=8).run(
            masked
        )
        # Below min_samples every position is skipped -> offsets all 0.
        assert set(outcome.offsets) == {0}

    def test_uniform_language_resists(self):
        """No skew, no frequency attack -- the structural caveat."""
        corpus = skewed_strings(96, 24, [0.25] * 4, seed=4)
        masked = initiator_mask_strings(corpus, DNA_ALPHABET, make_prng(45))
        outcome = LanguageStatisticsAttack(
            DNA_ALPHABET, dict(zip("ACGT", [0.25] * 4))
        ).run(masked)
        assert outcome.offset_recovery_rate(_true_offsets(45, 24)) < 0.6

    def test_validation(self):
        with pytest.raises(AttackError):
            LanguageStatisticsAttack(DNA_ALPHABET, {"X": 1.0})
        with pytest.raises(AttackError):
            LanguageStatisticsAttack(DNA_ALPHABET, {"A": 0.0})
        with pytest.raises(AttackError):
            LanguageStatisticsAttack(DNA_ALPHABET, PRIOR).run([])


class TestFreshMasksDefence:
    def test_attack_collapses(self):
        corpus = skewed_strings(96, 24, SKEW, seed=5)
        masked = initiator_mask_strings_fresh(corpus, DNA_ALPHABET, make_prng(46))
        outcome = LanguageStatisticsAttack(DNA_ALPHABET, PRIOR).run(masked)
        assert outcome.character_recovery_rate(corpus) < 0.55

    def test_fresh_masks_still_correct(self):
        """The defence must not cost correctness: full protocol round."""
        strings_j = ["ACGT", "TTTT", "A", "GATTACA"]
        strings_k = ["ACG", "CATCAT"]
        rng_j = make_prng(9)
        rng_tp = make_prng(9)
        masked = initiator_mask_strings_fresh(strings_j, DNA_ALPHABET, rng_j)
        matrices = responder_ccm_matrices(strings_k, masked, DNA_ALPHABET)
        distances = third_party_distances_fresh(matrices, DNA_ALPHABET, rng_tp)
        for m, t in enumerate(strings_k):
            for n, s in enumerate(strings_j):
                assert distances[m][n] == edit_distance(s, t)

    def test_fresh_masks_empty_responder(self):
        assert third_party_distances_fresh([], DNA_ALPHABET, make_prng(1)).size == 0

    def test_session_exact_with_fresh_masks(self):
        """End-to-end: fresh_string_masks preserves zero accuracy loss."""
        schema = [
            AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET)
        ]
        partitions = {
            "A": DataMatrix(schema, [["ACGTAC"], ["TTTTGG"], ["ACGTTC"]]),
            "B": DataMatrix(schema, [["ACGAAC"], ["TTCTGG"]]),
        }
        suite = ProtocolSuiteConfig(fresh_string_masks=True)
        session = ClusteringSession(
            SessionConfig(num_clusters=2, suite=suite), partitions
        )
        central, _, _, _ = centralized_pipeline(partitions)
        assert session.final_matrix().allclose(central, atol=0.0)

    def test_masks_actually_differ_across_strings(self):
        masked = initiator_mask_strings_fresh(
            ["AAAA", "AAAA"], DNA_ALPHABET, make_prng(7)
        )
        # With per-string resets these would be identical (see the
        # paper-scheme test in test_alphanumeric_protocol.py).
        assert masked[0] != masked[1]

    def test_cost_identical_to_paper_scheme(self):
        """The defence is free on the wire: same message sizes."""
        from repro.network.serialization import serialized_size

        corpus = skewed_strings(20, 16, SKEW, seed=6)
        paper = initiator_mask_strings(corpus, DNA_ALPHABET, make_prng(8))
        fresh = initiator_mask_strings_fresh(corpus, DNA_ALPHABET, make_prng(8))
        assert serialized_size(paper) == serialized_size(fresh)


class TestSkewedStringsGenerator:
    def test_frequencies_follow_weights(self):
        corpus = skewed_strings(200, 20, SKEW, seed=7)
        text = "".join(corpus)
        freq_a = text.count("A") / len(text)
        assert 0.5 < freq_a < 0.6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            skewed_strings(2, 5, [1.0])
        with pytest.raises(ConfigurationError):
            skewed_strings(-1, 5, SKEW)
        with pytest.raises(ConfigurationError):
            skewed_strings(2, 5, [0, 0, 0, 0])
