"""Backend-conformance harness for the condensed storage layer.

Every :class:`~repro.distance.store.CondensedStore` backend must behave
identically through the store contract and through every
:class:`~repro.distance.dissimilarity.DissimilarityMatrix` operation:
the float64 backends (``memory``, ``memmap``) bit-identically, the
``float32`` backend up to one rounding per stored value.  The harness
runs every public operation on a backend under test and on the
in-memory reference simultaneously and compares results -- plus a
Hypothesis property that drives random operation *sequences* through
both, so cross-operation interactions (grow, shrink, overwrite, rescale)
are covered, not just single calls.

The memmap backend additionally gets white-box units for what makes it
a backend at all: the LRU cache bound, dirty writeback through
eviction, shard-directory persistence/reopen, and ownership cleanup.
The RSS regression test at the bottom runs a real n=20,000 PAM workload
in a subprocess and asserts the peak RSS a full in-memory triangle
could never meet.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance.dissimilarity import DissimilarityMatrix, condensed_size
from repro.distance.store import (
    DEFAULT_BLOCK_ENTRIES,
    ENV_BACKEND,
    ENV_BLOCK_ENTRIES,
    ENV_CACHE_BYTES,
    ENV_DIRECTORY,
    Float32Store,
    InMemoryStore,
    MemmapStore,
    StoreSpec,
    default_store_spec,
    open_store,
    spec_of,
    with_backend,
)
from repro.exceptions import ConfigurationError

BACKENDS = ("memory", "float32", "memmap")

#: Tiny blocks so every conformance case crosses shard boundaries, and a
#: cache of four blocks so eviction/writeback runs constantly.
SMALL_BLOCK = 32
SMALL_CACHE = 4 * SMALL_BLOCK * 8


def small_spec(backend: str) -> StoreSpec:
    return StoreSpec(
        backend=backend, block_entries=SMALL_BLOCK, cache_bytes=SMALL_CACHE
    )


def stored_precision(backend: str, values: np.ndarray) -> np.ndarray:
    """What a backend is allowed to hand back for stored ``values``."""
    if backend == "float32":
        return values.astype(np.float32).astype(np.float64)
    return values


def fill_values(size: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 10.0, size=size)


# -- store-contract conformance ---------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreContract:
    def test_roundtrip_across_block_boundaries(self, backend):
        size = 5 * SMALL_BLOCK + 11
        values = fill_values(size)
        store = open_store(small_spec(backend), size, values)
        expected = stored_precision(backend, values)
        # Whole-store, single-block, and straddling reads all agree.
        np.testing.assert_array_equal(store.read(0, size), expected)
        np.testing.assert_array_equal(
            store.read(SMALL_BLOCK - 5, 3 * SMALL_BLOCK + 7),
            expected[SMALL_BLOCK - 5 : 3 * SMALL_BLOCK + 7],
        )
        assert store.read(17, 17).shape == (0,)
        store.close()

    def test_write_then_read_spans(self, backend):
        size = 4 * SMALL_BLOCK
        store = open_store(small_spec(backend), size)
        np.testing.assert_array_equal(store.read(0, size), np.zeros(size))
        patch = fill_values(2 * SMALL_BLOCK + 9, seed=11)
        store.write(SMALL_BLOCK - 4, patch)
        expected = np.zeros(size)
        expected[SMALL_BLOCK - 4 : SMALL_BLOCK - 4 + patch.size] = patch
        np.testing.assert_array_equal(
            store.read(0, size), stored_precision(backend, expected)
        )
        store.close()

    def test_gather_scatter_unsorted_positions(self, backend):
        size = 6 * SMALL_BLOCK
        values = fill_values(size, seed=3)
        store = open_store(small_spec(backend), size, values)
        rng = np.random.default_rng(5)
        # Unsorted, block-hopping, with repeats: the access pattern the
        # NN-chain tail gathers produce.
        positions = rng.integers(0, size, size=4 * SMALL_BLOCK, dtype=np.int64)
        expected = stored_precision(backend, values)[positions]
        np.testing.assert_array_equal(store.gather(positions), expected)
        out = np.empty(positions.size, dtype=np.float64)
        result = store.gather(positions, out=out)
        assert result is out
        np.testing.assert_array_equal(out, expected)

        unique = np.unique(positions)[::-1].copy()  # descending: not block order
        replacement = fill_values(unique.size, seed=13)
        store.scatter(unique, replacement)
        values[unique] = replacement
        np.testing.assert_array_equal(
            store.read(0, size), stored_precision(backend, values)
        )
        store.close()

    def test_spawn_is_zeroed_sibling(self, backend):
        store = open_store(small_spec(backend), 3 * SMALL_BLOCK)
        store.write(0, fill_values(3 * SMALL_BLOCK))
        sibling = store.spawn(2 * SMALL_BLOCK + 5)
        assert sibling.kind == store.kind
        assert sibling.size == 2 * SMALL_BLOCK + 5
        np.testing.assert_array_equal(
            sibling.read(0, sibling.size), np.zeros(sibling.size)
        )
        sibling.close()
        store.close()

    def test_adopt_holds_values(self, backend):
        store = open_store(small_spec(backend), SMALL_BLOCK)
        values = fill_values(2 * SMALL_BLOCK + 3, seed=17)
        adopted = store.adopt(values)
        assert adopted.kind == store.kind
        np.testing.assert_array_equal(
            adopted.read(0, adopted.size), stored_precision(backend, values)
        )
        adopted.close()
        store.close()

    def test_block_ranges_tile_the_store(self, backend):
        size = 3 * SMALL_BLOCK + 7
        store = open_store(small_spec(backend), size)
        spans = list(store.block_ranges())
        assert spans[0][0] == 0 and spans[-1][1] == size
        for (_, prev_stop), (start, stop) in zip(spans, spans[1:]):
            assert start == prev_stop and start < stop
        store.close()

    def test_array_view_contract(self, backend):
        values = fill_values(2 * SMALL_BLOCK)
        store = open_store(small_spec(backend), values.size, values)
        view = store.array_view()
        if backend == "memory":
            # The view IS the storage: writes through it are visible.
            assert view is not None
            view[3] = 42.0
            assert store.read(3, 4)[0] == 42.0
        else:
            assert view is None
        store.close()

    def test_spec_roundtrip(self, backend):
        spec = small_spec(backend)
        store = open_store(spec, SMALL_BLOCK)
        recovered = spec_of(store)
        assert recovered.backend == backend
        if backend != "memory":  # the RAM backend has no knobs to carry
            assert recovered.block_entries == SMALL_BLOCK
        assert with_backend(recovered, "memory").backend == "memory"
        store.close()


# -- matrix-level conformance ------------------------------------------------


def reference_condensed(n: int, seed: int = 23) -> np.ndarray:
    return fill_values(condensed_size(n), seed=seed)


def matrix_pair(n: int, backend: str, seed: int = 23):
    """The same matrix on the default backend and on ``backend``."""
    condensed = reference_condensed(n, seed)
    return (
        DissimilarityMatrix(n, condensed.copy()),
        DissimilarityMatrix(n, condensed, store_spec=small_spec(backend)),
    )


def assert_matches(backend: str, matrix: DissimilarityMatrix, reference: DissimilarityMatrix):
    """Backend matrix equals the in-memory reference (exactly for the
    float64 backends, to float32 precision otherwise)."""
    assert matrix.num_objects == reference.num_objects
    got, want = matrix.condensed, reference.condensed
    if backend == "float32":
        np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-6)
    else:
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("backend", BACKENDS)
class TestMatrixConformance:
    def test_construction_and_views(self, backend):
        n = 30
        reference, matrix = matrix_pair(n, backend)
        assert matrix.store_kind == backend
        expected = stored_precision(backend, reference.condensed)
        np.testing.assert_array_equal(matrix.condensed, expected)
        np.testing.assert_array_equal(
            matrix.to_square(), DissimilarityMatrix(n, expected).to_square()
        )
        np.testing.assert_array_equal(
            matrix.to_scipy_condensed(),
            DissimilarityMatrix(n, expected).to_scipy_condensed(),
        )
        for i, j in ((1, 0), (17, 4), (n - 1, n - 2), (5, 29)):
            assert matrix[i, j] == matrix[j, i]
            assert matrix[i, j] == DissimilarityMatrix(n, expected)[max(i, j), min(i, j)]
        assert matrix[3, 3] == 0.0

    def test_scalar_reductions(self, backend):
        n = 30
        reference, matrix = matrix_pair(n, backend)
        expected = DissimilarityMatrix(n, stored_precision(backend, reference.condensed))
        assert matrix.max_value() == expected.max_value()
        assert matrix.mean_value() == pytest.approx(expected.mean_value(), rel=1e-12)

    def test_setitem_and_blocks(self, backend):
        n = 26
        reference, matrix = matrix_pair(n, backend)
        for target in (reference, matrix):
            target[4, 11] = 3.25
            block = np.arange(1.0, 13.0).reshape(3, 4) / 8.0  # f32-exact
            target.set_block([0, 7, 19], [2, 5, 9, 23], block)
        np.testing.assert_array_equal(
            matrix.cross_block([0, 7, 19], [2, 5, 9, 23]),
            reference.cross_block([0, 7, 19], [2, 5, 9, 23]),
        )
        assert_matches(backend, matrix, reference)

    def test_normalized(self, backend):
        n = 24
        reference, matrix = matrix_pair(n, backend)
        assert_matches(backend, matrix.normalized(), reference.normalized())
        # The derived matrix inherits the backend.
        assert matrix.normalized().store_kind == backend

    def test_submatrix_and_remove(self, backend):
        n = 28
        reference, matrix = matrix_pair(n, backend)
        keep = [0, 3, 4, 11, 12, 19, 27, 26]
        assert_matches(backend, matrix.submatrix(keep), reference.submatrix(keep))
        drop = [1, 2, 25]
        assert_matches(
            backend, matrix.remove_objects(drop), reference.remove_objects(drop)
        )
        assert matrix.submatrix(keep).store_kind == backend

    def test_insert_objects(self, backend):
        n = 22
        reference, matrix = matrix_pair(n, backend)
        positions = [0, 5, 23]
        assert_matches(
            backend,
            matrix.insert_objects(positions),
            reference.insert_objects(positions),
        )

    def test_diagonal_blocks(self, backend):
        n = 20
        reference, matrix = matrix_pair(n, backend)
        local = DissimilarityMatrix(6, np.arange(1.0, 16.0) / 4.0)
        for target in (reference, matrix):
            target.set_diagonal_block(7, local)
        assert_matches(backend, matrix, reference)
        tail = np.arange(1.0, 1.0 + condensed_size(6) - condensed_size(4)) / 8.0
        for target in (reference, matrix):
            target.set_diagonal_delta(7, 4, 6, tail)
        assert_matches(backend, matrix, reference)

    def test_set_submatrix(self, backend):
        n = 18
        reference, matrix = matrix_pair(n, backend)
        indices = [2, 9, 3, 15, 10]
        local = DissimilarityMatrix(5, np.arange(1.0, 11.0) / 2.0)
        for target in (reference, matrix):
            target.set_submatrix(indices, local)
        assert_matches(backend, matrix, reference)

    def test_copy_and_equality(self, backend):
        n = 16
        _, matrix = matrix_pair(n, backend)
        clone = matrix.copy()
        assert clone.store_kind == backend
        assert clone == matrix and clone.allclose(matrix)
        clone[5, 2] = clone[5, 2] + 1.0
        assert clone != matrix

    def test_condensed_round_trip_io(self, backend):
        n = 25
        _, matrix = matrix_pair(n, backend)
        size = condensed_size(n)
        span = matrix.read_condensed(10, size - 10)
        matrix.write_condensed(10, span)
        np.testing.assert_array_equal(matrix.read_condensed(10, size - 10), span)
        with pytest.raises(ConfigurationError):
            matrix.write_condensed(size - 1, np.zeros(2))
        with pytest.raises(ConfigurationError):
            matrix.write_condensed(0, np.array([-1.0]))


# -- random operation sequences (Hypothesis) ---------------------------------


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.integers(0, 10_000)),
        st.tuples(st.just("insert"), st.integers(0, 3)),
        st.tuples(st.just("remove"), st.integers(0, 10_000)),
        st.tuples(st.just("block"), st.integers(0, 10_000)),
        st.tuples(st.just("normalize"), st.just(0)),
    ),
    min_size=1,
    max_size=8,
)


def _apply(op, payload, matrix: DissimilarityMatrix) -> DissimilarityMatrix:
    n = matrix.num_objects
    if op == "set" and n >= 2:
        i = 1 + payload % (n - 1)
        j = payload % i
        matrix[i, j] = float(payload % 31) / 4.0  # f32-exact values
    elif op == "insert" and n <= 24:
        positions = sorted({payload % (n + 1), (payload * 7 + 1) % (n + 2)})
        matrix = matrix.insert_objects(positions)
    elif op == "remove" and n >= 4:
        matrix = matrix.remove_objects([payload % n])
    elif op == "block" and n >= 6:
        rows = [payload % n, (payload + 1) % n]
        cols = [(payload + 2) % n, (payload + 3) % n, (payload + 4) % n]
        if not set(rows) & set(cols):
            block = (np.arange(6.0).reshape(2, 3) + payload % 8) / 8.0
            matrix.set_block(rows, cols, block)
    elif op == "normalize" and matrix.max_value() > 0:
        matrix = matrix.normalized()
    return matrix


@pytest.mark.parametrize("backend", ["float32", "memmap"])
@given(ops=_OPS, seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_random_operation_sequences_track_reference(backend, ops, seed):
    """Any operation sequence leaves backend and reference in agreement."""
    n = 8 + seed % 5
    condensed = np.floor(fill_values(condensed_size(n), seed=seed) * 8.0) / 8.0
    reference = DissimilarityMatrix(n, condensed.copy())
    matrix = DissimilarityMatrix(n, condensed, store_spec=small_spec(backend))
    for op, payload in ops:
        reference = _apply(op, payload, reference)
        matrix = _apply(op, payload, matrix)
        assert matrix.store_kind == backend
        if backend == "memmap":
            np.testing.assert_array_equal(matrix.condensed, reference.condensed)
        else:
            np.testing.assert_allclose(
                matrix.condensed, reference.condensed, rtol=1e-6, atol=1e-6
            )


# -- memmap white-box units --------------------------------------------------


class TestMemmapInternals:
    def test_lru_cache_stays_bounded(self):
        store = MemmapStore.create(
            16 * SMALL_BLOCK, block_entries=SMALL_BLOCK, cache_bytes=2 * SMALL_BLOCK * 8
        )
        values = fill_values(16 * SMALL_BLOCK, seed=29)
        store.write(0, values)  # touches every block
        assert store.cached_blocks <= 2
        # Reads refault evicted blocks; written data survived writeback.
        np.testing.assert_array_equal(store.read(0, store.size), values)
        assert store.cached_blocks <= 2
        store.close()

    def test_single_block_budget_still_works(self):
        store = MemmapStore.create(
            4 * SMALL_BLOCK, block_entries=SMALL_BLOCK, cache_bytes=1
        )
        values = fill_values(4 * SMALL_BLOCK, seed=31)
        store.write(0, values)
        np.testing.assert_array_equal(store.read(0, store.size), values)
        assert store.cached_blocks == 1
        store.close()

    def test_flush_then_reopen_sees_data(self, tmp_path):
        owner = MemmapStore.create(
            3 * SMALL_BLOCK,
            block_entries=SMALL_BLOCK,
            cache_bytes=SMALL_CACHE,
            base_directory=str(tmp_path),
        )
        values = fill_values(3 * SMALL_BLOCK, seed=37)
        owner.write(0, values)
        owner.flush()
        reader = MemmapStore.open(owner.directory)
        assert reader.size == owner.size
        assert reader.block_entries == SMALL_BLOCK
        np.testing.assert_array_equal(reader.read(0, reader.size), values)
        # The reader borrows: closing it leaves the shards in place...
        reader.close()
        assert os.path.isdir(owner.directory)
        np.testing.assert_array_equal(owner.read(0, owner.size), values)
        # ...while closing the owner reclaims the directory.
        directory = owner.directory
        owner.close()
        assert not os.path.exists(directory)

    def test_open_rejects_foreign_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            MemmapStore.open(str(tmp_path))

    def test_sparse_zero_store_is_cheap(self, tmp_path):
        store = MemmapStore.create(
            DEFAULT_BLOCK_ENTRIES * 4,
            base_directory=str(tmp_path),
        )
        # No writes: no shard file needs to exist yet.
        assert store.read(5, 9).tolist() == [0.0, 0.0, 0.0, 0.0]
        store.close()


# -- environment-driven defaults ---------------------------------------------


def test_default_spec_honours_environment(monkeypatch, tmp_path):
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    monkeypatch.delenv(ENV_BLOCK_ENTRIES, raising=False)
    monkeypatch.delenv(ENV_CACHE_BYTES, raising=False)
    monkeypatch.delenv(ENV_DIRECTORY, raising=False)
    assert default_store_spec() == StoreSpec()

    monkeypatch.setenv(ENV_BACKEND, "memmap")
    monkeypatch.setenv(ENV_BLOCK_ENTRIES, "4096")
    monkeypatch.setenv(ENV_CACHE_BYTES, str(1 << 20))
    monkeypatch.setenv(ENV_DIRECTORY, str(tmp_path))
    spec = default_store_spec()
    assert spec == StoreSpec(
        backend="memmap",
        block_entries=4096,
        cache_bytes=1 << 20,
        directory=str(tmp_path),
    )
    matrix = DissimilarityMatrix.zeros(10, store_spec=spec)
    assert matrix.store_kind == "memmap"
    assert str(tmp_path) in matrix.store.directory


def test_bad_spec_is_rejected():
    with pytest.raises(ConfigurationError):
        StoreSpec(backend="tape")
    with pytest.raises(ConfigurationError):
        StoreSpec(block_entries=0)
    with pytest.raises(ConfigurationError):
        StoreSpec(cache_bytes=0)


def test_store_types_are_exposed():
    assert isinstance(open_store(StoreSpec(), 3), InMemoryStore)
    assert isinstance(open_store(StoreSpec(backend="float32"), 3), Float32Store)


# -- the RSS regression: a real workload under a hard memory cap -------------


#: n=20,000 means a 1.6 GB condensed triangle; the cap below is far
#: under that, so the test fails if anything ever materialises the full
#: matrix (or leaks block mappings past the LRU budget).
RSS_PROBE_N = int(os.environ.get("STORAGE_RSS_N", "20000"))
RSS_CAP_MB = float(os.environ.get("STORAGE_RSS_CAP_MB", "1100"))


@pytest.mark.slow
def test_pam_at_scale_respects_rss_cap(tmp_path):
    triangle_mb = condensed_size(RSS_PROBE_N) * 8 / (1 << 20)
    assert RSS_CAP_MB < triangle_mb, "cap must be meaningful"
    report_path = tmp_path / "probe.json"
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.apps.storage_probe",
            "--scenario",
            "pam",
            "--n",
            str(RSS_PROBE_N),
            "--backend",
            "memmap",
            "--k",
            "4",
            "--cache-bytes",
            str(256 << 20),
            "--store-dir",
            str(tmp_path),
            "--json-out",
            str(report_path),
        ],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert completed.returncode == 0, completed.stderr
    report = json.loads(report_path.read_text())
    assert report["n"] == RSS_PROBE_N and report["backend"] == "memmap"
    assert report["peak_rss_mb"] < RSS_CAP_MB, report
