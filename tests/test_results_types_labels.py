"""Tests for result publication, shared types, and the label grammar."""

from __future__ import annotations

import pytest

from repro.core import labels as grammar
from repro.core.results import Cluster, ClusteringResult, result_from_labels
from repro.data.partition import ObjectRef
from repro.exceptions import ProtocolError
from repro.types import AttributeType, LinkageMethod, ProtocolRole


class TestAttributeType:
    def test_numeric_accepts(self):
        assert AttributeType.NUMERIC.accepts(3)
        assert AttributeType.NUMERIC.accepts(1.5)
        assert not AttributeType.NUMERIC.accepts(True)
        assert not AttributeType.NUMERIC.accepts("3")

    def test_string_types_accept(self):
        for t in (AttributeType.ALPHANUMERIC, AttributeType.CATEGORICAL):
            assert t.accepts("text")
            assert not t.accepts(3)
            assert t.is_string_valued

    def test_numeric_not_string_valued(self):
        assert not AttributeType.NUMERIC.is_string_valued

    def test_enum_values_stable(self):
        """Wire/tag format stability: these strings appear in message tags."""
        assert AttributeType.NUMERIC.value == "numeric"
        assert AttributeType.ALPHANUMERIC.value == "alphanumeric"
        assert AttributeType.CATEGORICAL.value == "categorical"

    def test_roles_match_paper_names(self):
        assert ProtocolRole.INITIATOR.value == "DHJ"
        assert ProtocolRole.RESPONDER.value == "DHK"
        assert ProtocolRole.THIRD_PARTY.value == "TP"

    def test_linkage_members(self):
        assert {m.value for m in LinkageMethod} == {
            "single", "complete", "average", "weighted", "ward",
        }


class TestLabelGrammar:
    def test_role_direction_matters(self):
        """Swapping initiator/responder must change every stream label."""
        assert grammar.numeric_jk("a", "X", "Y") != grammar.numeric_jk("a", "Y", "X")
        assert grammar.numeric_jt("a", "X", "Y") != grammar.numeric_jt("a", "Y", "X")
        assert grammar.alnum_jt("a", "X", "Y") != grammar.alnum_jt("a", "Y", "X")

    def test_attribute_scoping(self):
        assert grammar.numeric_jk("age", "X", "Y") != grammar.numeric_jk(
            "income", "X", "Y"
        )

    def test_protocol_kind_scoping(self):
        """Numeric and alphanumeric streams never collide even for the
        same attribute/pair."""
        assert grammar.numeric_jt("a", "X", "Y") != grammar.alnum_jt("a", "X", "Y")

    def test_channel_key_symmetric(self):
        assert grammar.channel_key("B", "A") == grammar.channel_key("A", "B")

    def test_all_labels_distinct(self):
        labels = {
            grammar.numeric_jk("a", "X", "Y"),
            grammar.numeric_jt("a", "X", "Y"),
            grammar.alnum_jt("a", "X", "Y"),
            grammar.channel_key("X", "Y"),
            grammar.group_key_label(),
        }
        assert len(labels) == 5


class TestCluster:
    def test_format_members_one_based(self):
        cluster = Cluster(0, (ObjectRef("A", 0), ObjectRef("B", 3)))
        assert cluster.format_members() == "A1, B4"
        assert cluster.format_members(one_based=False) == "A0, B3"


class TestClusteringResult:
    def _result(self):
        refs = [ObjectRef("A", 0), ObjectRef("A", 1), ObjectRef("B", 0)]
        return result_from_labels(refs, [0, 1, 0], quality={0: 0.5, 1: 0.0})

    def test_labels_for(self):
        result = self._result()
        refs = [ObjectRef("B", 0), ObjectRef("A", 1)]
        assert result.labels_for(refs) == [0, 1]

    def test_labels_for_missing_object(self):
        with pytest.raises(ProtocolError):
            self._result().labels_for([ObjectRef("Z", 9)])

    def test_figure13_format(self):
        text = self._result().format_figure13()
        assert text.splitlines() == ["Cluster1\tA1, B1", "Cluster2\tA2"]

    def test_payload_roundtrip(self):
        result = self._result()
        clone = ClusteringResult.from_payload(result.to_payload())
        assert clone.to_payload() == result.to_payload()
        assert clone.quality == {0: 0.5, 1: 0.0}

    def test_result_from_labels_mismatch(self):
        with pytest.raises(ProtocolError):
            result_from_labels([ObjectRef("A", 0)], [0, 1])

    def test_clusters_sorted_by_label(self):
        refs = [ObjectRef("A", i) for i in range(4)]
        result = result_from_labels(refs, [2, 0, 1, 0])
        assert [c.cluster_id for c in result.clusters] == [0, 1, 2]
        assert result.num_objects == 4
