"""Tests for comparison functions: numeric codec, categorical, edit/CCM."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance.categorical import categorical_distance, ciphertext_distance
from repro.distance.ccm import ccm_equal, ccm_from_strings
from repro.distance.edit import edit_distance, edit_distance_from_ccm
from repro.distance.numeric import FixedPointCodec, numeric_distance
from repro.exceptions import ConfigurationError


class TestNumericDistance:
    def test_basic(self):
        assert numeric_distance(3, 8) == 5
        assert numeric_distance(8, 3) == 5
        assert numeric_distance(-2, 2) == 4
        assert numeric_distance(1.5, 1.25) == 0.25


class TestFixedPointCodec:
    def test_integer_passthrough(self):
        codec = FixedPointCodec(0)
        assert codec.encode(42) == 42
        assert codec.decode(42) == 42
        assert isinstance(codec.decode(42), int)

    def test_float_roundtrip_at_precision(self):
        codec = FixedPointCodec(3)
        for value in (1.25, -0.875, 1234.567, 0.0):
            assert codec.decode(codec.encode(value)) == pytest.approx(value, abs=5e-4)

    def test_exact_at_representable_values(self):
        codec = FixedPointCodec(2)
        assert codec.decode(codec.encode(12.34)) == 12.34

    def test_int_scaled_exactly(self):
        codec = FixedPointCodec(4)
        assert codec.encode(7) == 70000

    def test_distance_decoding(self):
        codec = FixedPointCodec(2)
        x, y = codec.encode(10.25), codec.encode(3.5)
        assert codec.decode_distance(abs(x - y)) == 6.75

    def test_precision_bounds(self):
        with pytest.raises(ConfigurationError):
            FixedPointCodec(-1)
        with pytest.raises(ConfigurationError):
            FixedPointCodec(16)

    def test_encode_column(self):
        codec = FixedPointCodec(1)
        assert codec.encode_column([1, 2.5]) == [10, 25]

    @given(
        x=st.integers(-(10**6), 10**6),
        y=st.integers(-(10**6), 10**6),
        precision=st.integers(0, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_integer_distance_exact(self, x, y, precision):
        codec = FixedPointCodec(precision)
        assert codec.decode_distance(
            abs(codec.encode(x) - codec.encode(y))
        ) == pytest.approx(abs(x - y))


class TestCategoricalDistance:
    def test_equality_metric(self):
        assert categorical_distance("a", "a") == 0
        assert categorical_distance("a", "b") == 1

    def test_ciphertext_variant(self):
        assert ciphertext_distance(b"x", b"x") == 0
        assert ciphertext_distance(b"x", b"y") == 1


class TestEditDistance:
    @pytest.mark.parametrize(
        "s,t,d",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("abc", "abc", 0),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("intention", "execution", 5),
            ("abc", "bd", 2),
            ("ACGT", "AGT", 1),
        ],
    )
    def test_known_values(self, s, t, d):
        assert edit_distance(s, t) == d

    @given(s=st.text(alphabet="ACGT", max_size=25), t=st.text(alphabet="ACGT", max_size=25))
    @settings(max_examples=80, deadline=None)
    def test_property_symmetry(self, s, t):
        assert edit_distance(s, t) == edit_distance(t, s)

    @given(s=st.text(alphabet="ab", max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_property_identity(self, s):
        assert edit_distance(s, s) == 0

    @given(
        s=st.text(alphabet="ACGT", max_size=12),
        t=st.text(alphabet="ACGT", max_size=12),
        u=st.text(alphabet="ACGT", max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_triangle_inequality(self, s, t, u):
        assert edit_distance(s, u) <= edit_distance(s, t) + edit_distance(t, u)

    @given(s=st.text(alphabet="ACGT", max_size=20), t=st.text(alphabet="ACGT", max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_property_length_bounds(self, s, t):
        d = edit_distance(s, t)
        assert abs(len(s) - len(t)) <= d <= max(len(s), len(t))


class TestCcm:
    def test_known_ccm(self):
        ccm = ccm_from_strings("abc", "bd")
        # rows = target "bd", cols = source "abc"
        assert ccm.shape == (2, 3)
        assert ccm.tolist() == [[1, 0, 1], [1, 1, 1]]

    def test_ccm_equal_helper(self):
        a = ccm_from_strings("ab", "ba")
        b = ccm_from_strings("ab", "ba")
        assert ccm_equal(a, b)
        assert not ccm_equal(a, ccm_from_strings("ab", "bb"))
        assert not ccm_equal(a, ccm_from_strings("abc", "ba"))

    @given(s=st.text(alphabet="ACGT", max_size=15), t=st.text(alphabet="ACGT", max_size=15))
    @settings(max_examples=80, deadline=None)
    def test_property_ccm_expressiveness(self, s, t):
        """Section 2.3: the CCM is 'equally expressive' -- the DP over the
        CCM must equal the DP over the strings."""
        assert edit_distance_from_ccm(ccm_from_strings(s, t)) == edit_distance(s, t)

    def test_empty_string_shapes(self):
        assert edit_distance_from_ccm(np.ones((0, 4), dtype=np.uint8)) == 4
        assert edit_distance_from_ccm(np.ones((3, 0), dtype=np.uint8)) == 3
        assert edit_distance_from_ccm(np.ones((0, 0), dtype=np.uint8)) == 0

    def test_bad_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            edit_distance_from_ccm(np.zeros(3, dtype=np.uint8))

    def test_nonzero_entries_treated_as_mismatch(self):
        ccm = np.array([[0, 7], [255, 0]], dtype=np.uint8)
        reference = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        assert edit_distance_from_ccm(ccm) == edit_distance_from_ccm(reference)
