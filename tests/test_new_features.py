"""Tests for Newick export, new quality metrics, per-tag traffic, and
the one-call application pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.sessions import run_private_linkage, run_private_outlier_detection
from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.linkage import agglomerative
from repro.clustering.quality import cophenetic_correlation, dunn_index
from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.data.partition import ObjectRef
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ClusteringError, ConfigurationError
from repro.types import AttributeType


class TestNewick:
    def _tree(self):
        return Dendrogram(3, [Merge(0, 1, 1.0, 2), Merge(3, 2, 2.5, 3)])

    def test_known_tree(self):
        newick = self._tree().to_newick(["a", "b", "c"])
        assert newick == "((a:1,b:1):1.5,c:2.5);"

    def test_default_labels(self):
        assert "0:" in self._tree().to_newick()

    def test_single_leaf(self):
        assert Dendrogram(1, []).to_newick(["only"]) == "only:0;"

    def test_label_count_validated(self):
        with pytest.raises(ClusteringError):
            self._tree().to_newick(["a"])

    def test_branch_lengths_sum_to_heights(self):
        """Root-to-leaf path length equals the final merge height."""
        rng = np.random.default_rng(3)
        points = rng.normal(size=(8, 2))
        square = np.linalg.norm(points[:, None] - points[None, :], axis=2)
        matrix = DissimilarityMatrix.from_square(square)
        dendrogram = agglomerative(matrix, "complete")
        newick = dendrogram.to_newick()
        # Parse crudely: every leaf's path sums branch lengths to the root.
        # Instead of a parser, verify structural invariants:
        assert newick.endswith(";")
        assert newick.count("(") == newick.count(")") == dendrogram.num_leaves - 1
        for leaf in range(dendrogram.num_leaves):
            assert f"{leaf}:" in newick

    def test_parses_with_balanced_commas(self):
        newick = self._tree().to_newick(["x", "y", "z"])
        assert newick.count(",") == 2


class TestNewQualityMetrics:
    def _blobs(self):
        square = np.array(
            [
                [0, 1, 9, 9],
                [1, 0, 9, 9],
                [9, 9, 0, 1],
                [9, 9, 1, 0],
            ],
            dtype=float,
        )
        return DissimilarityMatrix.from_square(square)

    def test_dunn_good_vs_bad(self):
        matrix = self._blobs()
        assert dunn_index(matrix, [0, 0, 1, 1]) == pytest.approx(9.0)
        assert dunn_index(matrix, [0, 1, 0, 1]) < 1.0

    def test_dunn_singletons_inf(self):
        matrix = self._blobs()
        assert dunn_index(matrix, [0, 1, 2, 3]) == float("inf")

    def test_dunn_requires_two_clusters(self):
        with pytest.raises(ClusteringError):
            dunn_index(self._blobs(), [0, 0, 0, 0])

    def test_cophenetic_correlation_high_for_clean_structure(self):
        matrix = self._blobs()
        dendrogram = agglomerative(matrix, "average")
        assert cophenetic_correlation(matrix, dendrogram) > 0.95

    def test_cophenetic_correlation_validations(self):
        matrix = self._blobs()
        with pytest.raises(ClusteringError):
            cophenetic_correlation(matrix, Dendrogram(2, [Merge(0, 1, 1.0, 2)]))
        flat = DissimilarityMatrix.from_pairwise(4, lambda i, j: 1.0)
        tree = agglomerative(flat, "single")
        with pytest.raises(ClusteringError):
            cophenetic_correlation(flat, tree)


class TestTagTraffic:
    def test_bytes_by_tag_breakdown(self, mixed_partitions):
        session = ClusteringSession(SessionConfig(num_clusters=2), mixed_partitions)
        session.execute_protocol()
        by_tag = session.network.bytes_by_tag()
        # One tag per attribute plus setup/weights traffic.
        assert "numeric/age" in by_tag
        assert "alphanumeric/dna" in by_tag
        assert "categorical/city" in by_tag
        assert all(v > 0 for v in by_tag.values())
        # Tag totals account for all traffic.
        assert sum(by_tag.values()) == session.total_bytes()

    def test_alphanumeric_dominates_mixed_session(self, mixed_partitions):
        """CCMs are the quadratic-in-length term; on this workload the
        string attribute must be the most expensive."""
        session = ClusteringSession(SessionConfig(num_clusters=2), mixed_partitions)
        session.execute_protocol()
        by_tag = session.network.bytes_by_tag()
        assert by_tag["alphanumeric/dna"] == max(
            v for t, v in by_tag.items() if "/" in t
        )


class TestApplicationSessions:
    def test_run_private_linkage(self):
        schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
        partitions = {
            "A": DataMatrix(schema, [[100], [500], [900]]),
            "B": DataMatrix(schema, [[101], [903], [499]]),
        }
        matches, session = run_private_linkage(partitions, threshold=0.02)
        linked = {(m.left.local_id, m.right.local_id) for m in matches}
        assert linked == {(0, 0), (1, 2), (2, 1)}
        assert session.total_bytes() > 0

    def test_run_private_linkage_requires_two_sites(self):
        schema = [AttributeSpec("v", AttributeType.NUMERIC)]
        partitions = {
            "A": DataMatrix(schema, [[1]]),
            "B": DataMatrix(schema, [[2]]),
            "C": DataMatrix(schema, [[3]]),
        }
        with pytest.raises(ConfigurationError):
            run_private_linkage(partitions, threshold=0.1)

    def test_run_private_outliers(self):
        schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
        partitions = {
            "A": DataMatrix(schema, [[10], [11], [12]]),
            "B": DataMatrix(schema, [[13], [900], [11]]),
        }
        report, session = run_private_outlier_detection(
            partitions, k=2, top_n=1
        )
        assert report.flagged == (ObjectRef("B", 1),)
        assert session.total_bytes() > 0

    def test_run_private_outliers_passes_threshold(self):
        schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
        partitions = {
            "A": DataMatrix(schema, [[10], [11], [12]]),
            "B": DataMatrix(schema, [[13], [900], [11]]),
        }
        report, _ = run_private_outlier_detection(
            partitions, k=2, threshold=0.5
        )
        assert ObjectRef("B", 1) in report.flagged
