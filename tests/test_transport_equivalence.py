"""Transcript equality: the fast transport vs the seed implementation.

The transport PR rewrote the channel cipher (batched midstate keystream,
shared seal/open keystream inside ``Channel.transmit``) and gave the
wire codec batched integer-run paths.  The contract is the same as the
vectorized protocol engine's: *not a single wire byte changes*.  This
suite pins that against the preserved scalar implementations in
:mod:`repro.crypto.reference` -- per primitive, and frame-for-frame over
full sessions across secure/insecure channels and every PRNG kind.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.crypto.prng import available_kinds, make_prng
from repro.crypto.reference import (
    ScalarSymmetricCipher,
    scalar_keystream,
    scalar_transport,
    scalar_xor,
)
from repro.crypto.sym import SymmetricCipher, _KeystreamFactory, open_sealed, seal
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.network import serialization
from repro.network.channel import Channel, Eavesdropper
from repro.types import AttributeType

KEY = b"k" * 32


class TestKeystreamEquivalence:
    @pytest.mark.parametrize("length", [0, 1, 31, 32, 33, 64, 100, 4096, 100001])
    def test_matches_scalar_keystream(self, length):
        factory = _KeystreamFactory(KEY)
        nonce = bytes(range(16))
        assert factory.generate(nonce, length) == scalar_keystream(KEY, nonce, length)

    def test_long_key_matches(self):
        long_key = b"q" * 100  # beyond the SHA-256 block: HMAC hashes it first
        factory = _KeystreamFactory(long_key)
        assert factory.generate(b"n" * 16, 96) == scalar_keystream(long_key, b"n" * 16, 96)

    @given(data=st.binary(max_size=512))
    @settings(max_examples=50, deadline=None)
    def test_property_xor_roundtrip(self, data):
        stream = scalar_keystream(KEY, b"n" * 16, len(data))
        from repro.crypto.sym import _xor

        assert _xor(data, stream) == scalar_xor(data, stream)
        assert _xor(_xor(data, stream), stream) == data


class TestCipherEquivalence:
    @pytest.mark.parametrize("size", [0, 1, 32, 33, 1000, 65536])
    def test_seal_bytes_identical(self, size):
        message = bytes(i % 256 for i in range(size))
        fast = SymmetricCipher(KEY).seal(message, make_prng(size))
        scalar = ScalarSymmetricCipher(KEY).seal(message, make_prng(size))
        assert fast == scalar

    def test_open_interoperates(self):
        message = b"cross-implementation frame"
        sealed_fast = SymmetricCipher(KEY).seal(message, make_prng(1))
        assert ScalarSymmetricCipher(KEY).open(sealed_fast) == message
        sealed_scalar = ScalarSymmetricCipher(KEY).seal(message, make_prng(2))
        assert SymmetricCipher(KEY).open(sealed_scalar) == message

    def test_transmit_roundtrip_matches_seal(self):
        """The shared-keystream path emits the exact seal() wire bytes
        and consumes the same nonce entropy."""
        cipher = SymmetricCipher(KEY)
        message = b"x" * 1000
        entropy_a, entropy_b = make_prng(3), make_prng(3)
        wire, opened = cipher.transmit_roundtrip(message, entropy_a)
        assert wire == cipher.seal(message, entropy_b)
        assert opened == message
        assert entropy_a.draws == entropy_b.draws

    def test_scalar_transmit_roundtrip_reopens(self):
        cipher = ScalarSymmetricCipher(KEY)
        wire, opened = cipher.transmit_roundtrip(b"payload", make_prng(4))
        assert opened == b"payload"
        assert cipher.open(wire) == b"payload"

    def test_one_shot_helpers_cache_derived_keys(self):
        from repro.crypto import sym

        sym._CIPHER_CACHE.clear()
        sealed = seal(KEY, b"msg", make_prng(5))
        cached = sym._CIPHER_CACHE[KEY]
        assert open_sealed(KEY, sealed) == b"msg"
        assert sym._CIPHER_CACHE[KEY] is cached  # reused, not re-derived

    def test_cipher_cache_bounded(self):
        from repro.crypto import sym

        sym._CIPHER_CACHE.clear()
        for i in range(sym._CIPHER_CACHE_MAX + 8):
            seal(b"k" * 16 + i.to_bytes(16, "big"), b"", make_prng(i))
        assert len(sym._CIPHER_CACHE) <= sym._CIPHER_CACHE_MAX

    @given(data=st.binary(max_size=4096))
    @settings(max_examples=50, deadline=None)
    def test_property_seal_equivalence(self, data):
        fast = SymmetricCipher(KEY).seal(data, make_prng(len(data)))
        scalar = ScalarSymmetricCipher(KEY).seal(data, make_prng(len(data)))
        assert fast == scalar


_INT_RUN = st.lists(
    st.one_of(
        st.integers(-(2**80), 2**80),
        st.integers(-(2**64) - 10, 2**64 + 10),  # densely around the lane bound
        st.integers(-300, 300),
    ),
    max_size=60,
)


class TestCodecEquivalence:
    @given(values=_INT_RUN)
    @settings(max_examples=120, deadline=None)
    def test_property_int_runs_byte_identical(self, values):
        fast = serialization.serialize(values)
        try:
            serialization._FAST_PATHS = False
            assert serialization.serialize(values) == fast
            assert serialization.deserialize(fast) == values
        finally:
            serialization._FAST_PATHS = True
        assert serialization.deserialize(fast) == values
        assert serialization.serialized_size(values) == len(fast)

    def test_mixed_width_runs(self):
        values = [2**(8 * width) - 1 for width in range(1, 12)] * 40
        wire = serialization.serialize(values)
        assert serialization.deserialize(wire) == values
        try:
            serialization._FAST_PATHS = False
            assert serialization.serialize(values) == wire
        finally:
            serialization._FAST_PATHS = True

    def test_long_uniform_run_crosses_chunks(self):
        values = list(range(5000))
        wire = serialization.serialize(values)
        assert serialization.deserialize(wire) == values


def _session_partitions():
    schema = [
        AttributeSpec("num", AttributeType.NUMERIC, precision=1),
        AttributeSpec("seq", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
        AttributeSpec("cat", AttributeType.CATEGORICAL),
    ]
    return {
        "A": DataMatrix(schema, [[1.5, "ACGT", "x"], [5.0, "TTGT", "y"], [9.25, "ACGG", "x"]]),
        "B": DataMatrix(schema, [[2.0, "ACGA", "y"], [7.5, "TTTT", "x"]]),
        "C": DataMatrix(schema, [[3.5, "AGGT", "z"], [8.0, "TAGT", "y"]]),
    }


def _run_tapped(secure: bool, prng_kind: str):
    suite = ProtocolSuiteConfig(secure_channels=secure, prng_kind=prng_kind)
    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=11, suite=suite),
        _session_partitions(),
    )
    taps = {}
    names = sorted(_session_partitions()) + ["TP"]
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            tap = Eavesdropper(f"{a}|{b}")
            session.network.attach_tap(a, b, tap)
            taps[(a, b)] = tap
    result = session.run()
    return session, result, taps


class TestSessionTranscriptEquality:
    """Full sessions, fast transport vs the seed transport, frame for frame."""

    @pytest.mark.parametrize("secure", [True, False])
    @pytest.mark.parametrize("prng_kind", sorted(available_kinds()))
    def test_wire_identical_to_seed_transport(self, secure, prng_kind):
        fast_session, fast_result, fast_taps = _run_tapped(secure, prng_kind)
        with scalar_transport():
            seed_session, seed_result, seed_taps = _run_tapped(secure, prng_kind)

        assert fast_result.to_payload() == seed_result.to_payload()
        for link, fast_tap in fast_taps.items():
            seed_tap = seed_taps[link]
            fast_frames = [(f.sender, f.recipient, f.kind, f.tag, f.wire) for f in fast_tap.frames]
            seed_frames = [(f.sender, f.recipient, f.kind, f.tag, f.wire) for f in seed_tap.frames]
            assert fast_frames == seed_frames, f"transcript diverged on link {link}"

    @pytest.mark.parametrize("secure", [True, False])
    def test_stats_identical_to_seed_transport(self, secure):
        fast_session, _, _ = _run_tapped(secure, "hash_drbg")
        with scalar_transport():
            seed_session, _, _ = _run_tapped(secure, "hash_drbg")

        names = sorted(_session_partitions()) + ["TP"]
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                fast_channel = fast_session.network.channel(a, b)
                seed_channel = seed_session.network.channel(a, b)
                for x, y in ((a, b), (b, a)):
                    assert fast_channel.stats(x, y) == seed_channel.stats(x, y)
                fast_tags = {
                    tag: (s.messages, s.payload_bytes, s.wire_bytes)
                    for tag, s in fast_channel.tag_totals().items()
                }
                seed_tags = {
                    tag: (s.messages, s.payload_bytes, s.wire_bytes)
                    for tag, s in seed_channel.tag_totals().items()
                }
                assert fast_tags == seed_tags
        assert fast_session.total_bytes() == seed_session.total_bytes()

    def test_scalar_transport_restores_state(self):
        from repro.network import channel

        before = channel.SymmetricCipher
        with scalar_transport():
            assert channel.SymmetricCipher is ScalarSymmetricCipher
            assert serialization._FAST_PATHS is False
        assert channel.SymmetricCipher is before
        assert serialization._FAST_PATHS is True

    def test_scalar_channel_matches_fast_channel(self):
        """Channel-level: same key/entropy, byte-identical wire frames."""
        payload = {"attribute": "num", "values": [2**63 + i for i in range(100)]}
        fast = Channel("A", "B", secure=True, key=KEY, entropy=make_prng(1))
        fast_message = fast.transmit("A", "B", "kind", "tag", payload)
        with scalar_transport():
            seed = Channel("A", "B", secure=True, key=KEY, entropy=make_prng(1))
            seed_message = seed.transmit("A", "B", "kind", "tag", payload)
        assert fast_message.payload == seed_message.payload
        assert fast_message.wire_bytes == seed_message.wire_bytes
        assert fast.stats("A", "B") == seed.stats("A", "B")
