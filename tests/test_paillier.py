"""Tests for the from-scratch Paillier cryptosystem."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import generate_paillier_keypair
from repro.crypto.prng import make_prng
from repro.exceptions import CryptoError


@pytest.fixture(scope="module")
def keypair():
    return generate_paillier_keypair(make_prng("paillier-test"), bits=256)


@pytest.fixture()
def entropy():
    return make_prng("enc-entropy")


class TestKeygen:
    def test_modulus_size(self, keypair):
        assert keypair.public_key.bits == 256

    def test_deterministic_from_entropy(self):
        a = generate_paillier_keypair(make_prng(1), bits=128)
        b = generate_paillier_keypair(make_prng(1), bits=128)
        assert a.public_key.n == b.public_key.n

    def test_too_small_rejected(self):
        with pytest.raises(CryptoError):
            generate_paillier_keypair(make_prng(2), bits=32)

    def test_ciphertext_bytes(self, keypair):
        assert keypair.public_key.ciphertext_bytes == pytest.approx(64, abs=1)


class TestEncryptDecrypt:
    @pytest.mark.parametrize("value", [0, 1, -1, 42, -42, 10**20, -(10**20)])
    def test_roundtrip(self, keypair, entropy, value):
        c = keypair.public_key.encrypt(value, entropy)
        assert keypair.private_key.decrypt(c) == value

    def test_probabilistic(self, keypair, entropy):
        a = keypair.public_key.encrypt(5, entropy)
        b = keypair.public_key.encrypt(5, entropy)
        assert a.value != b.value
        assert keypair.private_key.decrypt(a) == keypair.private_key.decrypt(b)

    def test_plaintext_bound_enforced(self, keypair, entropy):
        with pytest.raises(CryptoError):
            keypair.public_key.encrypt(keypair.public_key.max_plaintext + 1, entropy)

    def test_cross_key_decrypt_rejected(self, keypair, entropy):
        other = generate_paillier_keypair(make_prng("other"), bits=128)
        c = other.public_key.encrypt(3, entropy)
        with pytest.raises(CryptoError):
            keypair.private_key.decrypt(c)


class TestHomomorphism:
    def test_addition(self, keypair, entropy):
        c = keypair.public_key.encrypt(30, entropy) + keypair.public_key.encrypt(
            12, entropy
        )
        assert keypair.private_key.decrypt(c) == 42

    def test_addition_with_negatives(self, keypair, entropy):
        c = keypair.public_key.encrypt(-30, entropy) + keypair.public_key.encrypt(
            12, entropy
        )
        assert keypair.private_key.decrypt(c) == -18

    def test_add_plain(self, keypair, entropy):
        c = keypair.public_key.encrypt(10, entropy).add_plain(-3)
        assert keypair.private_key.decrypt(c) == 7

    def test_scalar_multiplication(self, keypair, entropy):
        c = keypair.public_key.encrypt(7, entropy) * 6
        assert keypair.private_key.decrypt(c) == 42
        assert keypair.private_key.decrypt(3 * keypair.public_key.encrypt(-2, entropy)) == -6

    def test_negation_and_subtraction(self, keypair, entropy):
        a = keypair.public_key.encrypt(10, entropy)
        b = keypair.public_key.encrypt(4, entropy)
        assert keypair.private_key.decrypt(-a) == -10
        assert keypair.private_key.decrypt(a - b) == 6

    def test_scalar_type_guard(self, keypair, entropy):
        with pytest.raises(TypeError):
            keypair.public_key.encrypt(1, entropy) * 1.5  # noqa: B018

    def test_mixed_key_addition_rejected(self, keypair, entropy):
        other = generate_paillier_keypair(make_prng("other2"), bits=128)
        a = keypair.public_key.encrypt(1, entropy)
        b = other.public_key.encrypt(1, entropy)
        with pytest.raises(CryptoError):
            _ = a + b

    def test_rerandomize(self, keypair, entropy):
        a = keypair.public_key.encrypt(9, entropy)
        b = a.rerandomize(entropy)
        assert a.value != b.value
        assert keypair.private_key.decrypt(b) == 9

    @given(x=st.integers(-(10**12), 10**12), y=st.integers(-(10**12), 10**12))
    @settings(max_examples=25, deadline=None)
    def test_property_additive(self, keypair, x, y):
        entropy = make_prng(x ^ y)
        cx = keypair.public_key.encrypt(x, entropy)
        cy = keypair.public_key.encrypt(y, entropy)
        assert keypair.private_key.decrypt(cx + cy) == x + y

    @given(x=st.integers(-(10**9), 10**9), k=st.integers(-1000, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_scalar(self, keypair, x, k):
        entropy = make_prng(x ^ k)
        cx = keypair.public_key.encrypt(x, entropy)
        assert keypair.private_key.decrypt(cx * k) == x * k

    def test_serialized_size(self, keypair, entropy):
        c = keypair.public_key.encrypt(1, entropy)
        assert c.serialized_size() == keypair.public_key.ciphertext_bytes
