"""Randomized property suite for the rewritten clustering layer.

Hypothesis drives random dissimilarity matrices -- including matrices
with deliberate ties, the adversarial regime for nearest-neighbor-chain
clustering -- through invariants the layer must hold unconditionally:

* NN-chain agrees with ``scipy.cluster.hierarchy.linkage`` on merge
  heights, and with the preserved seed on the full dendrogram,
* cophenetic matrices stay ultrametric and consistent with the merge
  heights; supported linkages stay monotone,
* FasterPAM never ends with a higher cost than the reference PAM from
  the same BUILD initialisation,
* the condensed primitives agree with their square-matrix meanings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.cluster.hierarchy import linkage as scipy_linkage

from repro.clustering.kmedoids import k_medoids
from repro.clustering.linkage import agglomerative
from repro.clustering.reference import reference_agglomerative, reference_k_medoids
from repro.distance.dissimilarity import (
    DissimilarityMatrix,
    condensed_argmin,
    condensed_pair_indices,
    condensed_row_gather,
    condensed_row_scatter,
    same_label_mask,
)
from repro.types import LinkageMethod

METHODS = list(LinkageMethod)


def random_matrix(n: int, seed: int, tie_levels: int | None) -> DissimilarityMatrix:
    """Euclidean matrix, or an integer-levels one with massive ties."""
    rng = np.random.default_rng(seed)
    if tie_levels is None:
        points = rng.normal(size=(n, 3))
        square = np.linalg.norm(points[:, None] - points[None, :], axis=2)
    else:
        square = rng.integers(1, tie_levels + 1, size=(n, n)).astype(np.float64)
        square = np.minimum(square, square.T)
        np.fill_diagonal(square, 0.0)
    return DissimilarityMatrix.from_square(square)


matrix_strategy = st.tuples(
    st.integers(3, 16),
    st.integers(0, 10_000),
    st.one_of(st.none(), st.integers(2, 5)),
)


class TestLinkageProperties:
    @given(params=matrix_strategy, method_index=st.integers(0, len(METHODS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_nn_chain_vs_scipy_heights(self, params, method_index):
        """Merge-height multisets match scipy's.

        With deliberate ties, only single linkage has tie-independent
        heights (the MST edge weights); for the other methods different
        legal tie resolutions yield different (all valid) dendrograms --
        scipy picks its own, we replicate the seed's (asserted exactly by
        :meth:`test_nn_chain_vs_reference_exact`) -- so the scipy
        comparison degrades to the invariants every resolution shares.
        """
        matrix = random_matrix(params[0], params[1], params[2])
        method = METHODS[method_index]
        ours = agglomerative(matrix, method)
        theirs = scipy_linkage(matrix.to_scipy_condensed(), method=method.value)
        if params[2] is None or method is LinkageMethod.SINGLE:
            assert np.allclose(
                sorted(ours.heights), sorted(theirs[:, 2]), rtol=1e-8, atol=1e-12
            )
        else:
            assert len(ours.heights) == theirs.shape[0]
            assert ours.heights[0] == pytest.approx(theirs[0, 2], rel=1e-8)
            assert ours.merges[-1].size == int(theirs[-1, 3])

    @given(params=matrix_strategy, method_index=st.integers(0, len(METHODS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_nn_chain_vs_reference_exact(self, params, method_index):
        """Merge-for-merge identity with the seed, ties included."""
        matrix = random_matrix(params[0], params[1], params[2])
        method = METHODS[method_index]
        assert (
            agglomerative(matrix, method).merges
            == reference_agglomerative(matrix, method).merges
        )

    @given(params=matrix_strategy, method_index=st.integers(0, len(METHODS) - 1))
    @settings(max_examples=30, deadline=None)
    def test_cophenetic_and_monotonicity_invariants(self, params, method_index):
        matrix = random_matrix(params[0], params[1], params[2])
        method = METHODS[method_index]
        dendrogram = agglomerative(matrix, method)
        # Supported linkages are reducible, hence monotone.
        assert dendrogram.is_monotone()
        coph = dendrogram.cophenetic_matrix()
        # Ultrametric: coph(i,j) <= max(coph(i,k), coph(k,j)) for all triples.
        via = np.maximum(coph[:, :, None], coph[None, :, :])
        assert np.all(coph[:, None, :] <= via.transpose(0, 2, 1) + 1e-9)
        # Every off-diagonal cophenetic value is one of the merge heights.
        heights = np.asarray(dendrogram.heights)
        values = dendrogram.cophenetic_condensed()
        assert np.all(np.isclose(values[:, None], heights[None, :]).any(axis=1))


class TestKMedoidsProperties:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(6, 40),
        k=st.integers(2, 5),
        tie_levels=st.one_of(st.none(), st.integers(2, 5)),
    )
    @settings(max_examples=30, deadline=None)
    def test_fasterpam_cost_never_above_reference(self, seed, n, k, tie_levels):
        """Same BUILD init, so the steepest-descent replay can never end
        costlier than the reference PAM."""
        k = min(k, n)
        matrix = random_matrix(n, seed, tie_levels)
        fast = k_medoids(matrix, k)
        ref = reference_k_medoids(matrix, k)
        assert fast.cost <= ref.cost + 1e-9

    @given(seed=st.integers(0, 10_000), n=st.integers(4, 30))
    @settings(max_examples=20, deadline=None)
    def test_labels_are_consistent_partition(self, seed, n):
        matrix = random_matrix(n, seed, None)
        k = 2 + seed % 3
        result = k_medoids(matrix, min(k, n))
        assert len(result.labels) == n
        assert sorted(set(result.labels)) == list(range(len(result.medoids)))
        # Each medoid belongs to the cluster it names, in label order.
        for label, medoid in enumerate(result.medoids):
            assert result.labels[medoid] == label


class TestCondensedPrimitives:
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 30))
    @settings(max_examples=25, deadline=None)
    def test_argmin_matches_square_rule(self, seed, n):
        """condensed_argmin == np.argmin over the square (seed tie rule),
        exercised on tied integer matrices."""
        matrix = random_matrix(n, seed, 3)
        square = matrix.to_square()
        np.fill_diagonal(square, np.inf)
        flat = int(np.argmin(square))
        expected = divmod(flat, n)
        i, j = condensed_argmin(np.asarray(matrix.condensed), n)
        assert (min(i, j), max(i, j)) == (
            min(expected),
            max(expected),
        )

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 25))
    @settings(max_examples=25, deadline=None)
    def test_row_gather_scatter_roundtrip(self, seed, n):
        matrix = random_matrix(n, seed, None)
        values = np.array(matrix.condensed)
        square = matrix.to_square()
        index = seed % n
        row = condensed_row_gather(values, index, n)
        assert np.array_equal(row, square[index])
        doubled = row * 2.0
        condensed_row_scatter(values, index, n, doubled)
        rebuilt = condensed_row_gather(values, index, n)
        expected = square[index] * 2.0
        expected[index] = 0.0
        assert np.array_equal(rebuilt, expected)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 25))
    @settings(max_examples=25, deadline=None)
    def test_same_label_mask(self, seed, n):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 4, size=n)
        i, j = condensed_pair_indices(n)
        assert np.array_equal(same_label_mask(labels), labels[i] == labels[j])

    def test_cross_block_matches_elementwise(self):
        matrix = random_matrix(12, 77, None)
        rows, cols = [1, 5, 9], [0, 2, 5, 11]
        block = matrix.cross_block(rows, cols)
        for bi, i in enumerate(rows):
            for bj, j in enumerate(cols):
                assert block[bi, bj] == matrix[i, j]
