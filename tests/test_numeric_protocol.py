"""Tests for the numeric comparison protocol (Section 4.1, Figures 3-6).

Includes the paper's literal Figure 3 trace, correctness over random
inputs for every PRNG kind, both batch and per-pair modes, the exact
reseeding/alignment semantics, and statistical checks backing the
privacy argument (masked values look uniform; the sign of ``x - y`` is
a fair coin over ``rng_JK`` seeds).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.numeric import (
    initiator_mask_batch,
    initiator_mask_per_pair,
    responder_matrix_batch,
    responder_matrix_per_pair,
    third_party_unmask_batch,
    third_party_unmask_per_pair,
)
from repro.crypto.prng import available_kinds, make_prng
from repro.exceptions import ProtocolError

MASK_BITS = 64


def _rngs(seed_jk=1, seed_jt=2, kind="hash_drbg"):
    """Three aligned generator sets: DHJ's, DHK's and TP's clones."""
    return (
        (make_prng(seed_jk, kind), make_prng(seed_jt, kind)),  # DHJ
        make_prng(seed_jk, kind),  # DHK (shares rng_JK)
        make_prng(seed_jt, kind),  # TP (shares rng_JT)
    )


def run_batch(values_j, values_k, seed_jk=1, seed_jt=2, kind="hash_drbg"):
    (rng_jk_j, rng_jt_j), rng_jk_k, rng_jt_tp = _rngs(seed_jk, seed_jt, kind)
    masked = initiator_mask_batch(values_j, rng_jk_j, rng_jt_j, MASK_BITS)
    matrix = responder_matrix_batch(values_k, masked, rng_jk_k)
    return third_party_unmask_batch(matrix, rng_jt_tp, MASK_BITS)


def run_per_pair(values_j, values_k, seed_jk=1, seed_jt=2, kind="hash_drbg"):
    (rng_jk_j, rng_jt_j), rng_jk_k, rng_jt_tp = _rngs(seed_jk, seed_jt, kind)
    masked = initiator_mask_per_pair(
        values_j, len(values_k), rng_jk_j, rng_jt_j, MASK_BITS
    )
    matrix = responder_matrix_per_pair(values_k, masked, rng_jk_k)
    return third_party_unmask_per_pair(matrix, rng_jt_tp, MASK_BITS)


class FixedRng:
    """Deterministic stand-in reproducing the paper's literal constants."""

    def __init__(self, parity: int, mask: int) -> None:
        self._parity = parity
        self._mask = mask

    def next_sign_bit(self) -> int:
        return self._parity % 2

    def next_bits(self, _bits: int) -> int:
        return self._mask

    def next_sign_bits(self, count: int) -> np.ndarray:
        return np.full(count, self._parity % 2, dtype=np.uint64)

    def next_bits_block(self, count: int, _bits: int) -> np.ndarray:
        return np.full(count, self._mask, dtype=np.uint64)

    def reset(self) -> None:  # pragma: no cover - trivially stateless
        pass


class TestFigure3Trace:
    """The worked example: x=3, y=8, R_JK=5, R_JT=7 -> distance 5."""

    def test_initiator_side(self):
        # R_JK = 5 is odd -> DHJ negates: x' = -3; x'' = -3 + 7 = 4.
        masked = initiator_mask_batch([3], FixedRng(5, 0), FixedRng(0, 7), MASK_BITS)
        assert masked == [4]

    def test_responder_side(self):
        # DHK sees R_JK = 5: (-1)^((5+1)%2) = +1 -> m = 4 + 8 = 12.
        matrix = responder_matrix_batch([8], [4], FixedRng(5, 0))
        assert matrix == [[12]]

    def test_third_party_side(self):
        # TP: |12 - 7| = 5 = |3 - 8|.
        distances = third_party_unmask_batch([[12]], FixedRng(0, 7), MASK_BITS)
        assert distances.tolist() == [[5]]


@pytest.mark.parametrize("kind", available_kinds())
class TestCorrectness:
    def test_batch_mode(self, kind):
        values_j = [3, -15, 1000, 0, 7]
        values_k = [8, 8, -100]
        result = run_batch(values_j, values_k, kind=kind)
        for m, y in enumerate(values_k):
            for n, x in enumerate(values_j):
                assert result[m][n] == abs(x - y)

    def test_per_pair_mode(self, kind):
        values_j = [3, -15, 1000, 0]
        values_k = [8, 8, -100]
        result = run_per_pair(values_j, values_k, kind=kind)
        for m, y in enumerate(values_k):
            for n, x in enumerate(values_j):
                assert result[m][n] == abs(x - y)

    def test_modes_agree(self, kind):
        values_j = [5, 10, 15]
        values_k = [0, 20]
        assert np.array_equal(
            run_batch(values_j, values_k, kind=kind),
            run_per_pair(values_j, values_k, kind=kind),
        )


class TestEdgeCases:
    def test_empty_initiator(self):
        result = run_batch([], [1, 2])
        assert result.size == 0 and result.shape[0] in (0, 2)

    def test_empty_responder(self):
        assert run_batch([1, 2], []).size == 0

    def test_single_pair(self):
        assert run_batch([42], [42]).tolist() == [[0]]

    def test_huge_values(self):
        big = 2**80  # far beyond the mask width; correctness must hold
        assert run_batch([big], [big - 3]).tolist() == [[3]]

    def test_per_pair_row_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            responder_matrix_per_pair([1, 2], [[3]], make_prng(1))

    def test_per_pair_negative_size_rejected(self):
        with pytest.raises(ProtocolError):
            initiator_mask_per_pair([1], -1, make_prng(1), make_prng(2), 64)


class TestAlignmentSemantics:
    def test_responder_reset_per_row(self):
        """Every responder row must re-consume DHJ's sign draws; a stale
        stream would negate the wrong inputs in later rows."""
        values_j = list(range(10))
        values_k = [100, 200, 300]
        result = run_batch(values_j, values_k)
        for m, y in enumerate(values_k):
            assert result[m].tolist() == [abs(x - y) for x in values_j]

    def test_seeds_must_match(self):
        """A responder using the wrong rng_JK seed corrupts the output."""
        values_j = list(range(1, 13))
        values_k = [5]
        (rng_jk_j, rng_jt_j), _, _ = _rngs(seed_jk=1, seed_jt=2)
        masked = initiator_mask_batch(values_j, rng_jk_j, rng_jt_j, MASK_BITS)
        matrix = responder_matrix_batch(values_k, masked, make_prng(999))
        distances = third_party_unmask_batch(matrix, make_prng(2), MASK_BITS)
        expected = [[abs(x - 5) for x in values_j]]
        # With 12 columns the chance all 12 sign bits coincide is 2^-12;
        # the seeds here are fixed, so this is deterministic.
        assert distances.tolist() != expected

    def test_tp_wrong_mask_width_fails(self):
        (rng_jk_j, rng_jt_j), rng_jk_k, rng_jt_tp = _rngs()
        masked = initiator_mask_batch([100], rng_jk_j, rng_jt_j, MASK_BITS)
        matrix = responder_matrix_batch([1], masked, rng_jk_k)
        bad = third_party_unmask_batch(matrix, rng_jt_tp, MASK_BITS // 2)
        assert bad != [[99]]


@given(
    values_j=st.lists(st.integers(-(10**9), 10**9), max_size=6),
    values_k=st.lists(st.integers(-(10**9), 10**9), max_size=6),
    seed_jk=st.integers(0, 2**32),
    seed_jt=st.integers(0, 2**32),
)
@settings(max_examples=60, deadline=None)
def test_property_batch_correctness(values_j, values_k, seed_jk, seed_jt):
    result = run_batch(values_j, values_k, seed_jk, seed_jt, kind="xorshift64star")
    for m, y in enumerate(values_k):
        for n, x in enumerate(values_j):
            assert result[m][n] == abs(x - y)


@given(
    x=st.integers(-(10**6), 10**6),
    y=st.integers(-(10**6), 10**6),
    seed=st.integers(0, 2**32),
)
@settings(max_examples=60, deadline=None)
def test_property_per_pair_correctness(x, y, seed):
    result = run_per_pair([x], [y], seed_jk=seed, seed_jt=seed + 1)
    assert result == [[abs(x - y)]]


class TestPrivacyStatistics:
    def test_masked_value_looks_uniform(self):
        """DHK's view: x'' = mask +- x must be indistinguishable from the
        mask distribution itself (chi-square over high bits)."""
        from scipy.stats import chisquare

        bins = [0] * 16
        for seed in range(2000):
            rng_jk = make_prng(f"jk|{seed}")
            rng_jt = make_prng(f"jt|{seed}")
            (masked,) = initiator_mask_batch([12345], rng_jk, rng_jt, MASK_BITS)
            bins[(masked >> 60) & 0xF] += 1
        _stat, p = chisquare(bins)
        assert p > 0.001

    def test_sign_is_fair_coin_over_seeds(self):
        """TP's view reveals |x-y| but the sign of (x-y) must be a coin:
        half of all rng_JK seeds negate x, half negate y."""
        negated = 0
        trials = 2000
        for seed in range(trials):
            rng = make_prng(f"sign|{seed}")
            if rng.next_sign_bit() == 1:
                negated += 1
        assert 0.45 < negated / trials < 0.55

    def test_tp_cannot_distinguish_sign(self):
        """For fixed |x-y|, TP's unmasked value is identical whether
        x > y or x < y -- the refinement Figure 3 exists to provide."""
        seeds_showing_each = set()
        for seed in range(50):
            r1 = run_batch([10], [4], seed_jk=seed, seed_jt=99)
            r2 = run_batch([4], [10], seed_jk=seed, seed_jt=99)
            assert r1 == r2 == [[6]]
            seeds_showing_each.add(make_prng(seed).next_sign_bit())
        assert seeds_showing_each == {0, 1}
