"""Vectorized engine vs scalar reference: byte-identical protocol messages.

The rewrite of :mod:`repro.core.numeric` and :mod:`repro.core.alphanumeric`
as array operations must not change a single protocol message relative to
the paper-shaped scalar implementations preserved in
:mod:`repro.core.reference`.  These tests drive both engines with clone
generators over random inputs -- every PRNG kind, mask widths below,
at and above 64 bits (the int64 fast path and the object-dtype exact
fallback) -- and compare the *serialized wire bytes*, not just the
values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import alphanumeric as alnum_vec
from repro.core import numeric as num_vec
from repro.core import reference as ref
from repro.crypto.prng import available_kinds, make_prng
from repro.data.alphabet import DNA_ALPHABET, FIGURE7_ALPHABET, Alphabet
from repro.distance.edit import edit_distance_from_ccm
from repro.network.serialization import serialize

ALL_KINDS = available_kinds()
WIDE_ALPHABET = Alphabet("abcdefghijklmnopqrstuvwxyz0123456789")


def _clones(seed, kind):
    return make_prng(seed, kind), make_prng(seed, kind)


@pytest.mark.parametrize("kind", ALL_KINDS)
@pytest.mark.parametrize("mask_bits", [16, 62, 64, 96, 128])
class TestNumericWireEquivalence:
    VALUES_J = [3, -15, 1000, 0, 7, 2**70, -(2**65)]
    VALUES_K = [8, 8, -100, 2**70 + 3]

    def test_batch_messages_byte_identical(self, kind, mask_bits):
        jk_v, jk_r = _clones(1, kind)
        jt_v, jt_r = _clones(2, kind)
        masked_v = num_vec.initiator_mask_batch(self.VALUES_J, jk_v, jt_v, mask_bits)
        masked_r = ref.initiator_mask_batch(self.VALUES_J, jk_r, jt_r, mask_bits)
        assert serialize(masked_v) == serialize(masked_r)
        jk_v, jk_r = _clones(1, kind)
        matrix_v = num_vec.responder_matrix_batch(self.VALUES_K, masked_v, jk_v)
        matrix_r = ref.responder_matrix_batch(self.VALUES_K, masked_r, jk_r)
        assert serialize(matrix_v) == serialize(matrix_r)
        jt_v, jt_r = _clones(2, kind)
        unmasked_v = num_vec.third_party_unmask_batch(matrix_v, jt_v, mask_bits)
        unmasked_r = ref.third_party_unmask_batch(matrix_r, jt_r, mask_bits)
        assert unmasked_v.tolist() == unmasked_r

    def test_per_pair_messages_byte_identical(self, kind, mask_bits):
        jk_v, jk_r = _clones(3, kind)
        jt_v, jt_r = _clones(4, kind)
        m = len(self.VALUES_K)
        masked_v = num_vec.initiator_mask_per_pair(
            self.VALUES_J, m, jk_v, jt_v, mask_bits
        )
        masked_r = ref.initiator_mask_per_pair(
            self.VALUES_J, m, jk_r, jt_r, mask_bits
        )
        assert serialize(masked_v) == serialize(masked_r)
        jk_v, jk_r = _clones(3, kind)
        matrix_v = num_vec.responder_matrix_per_pair(self.VALUES_K, masked_v, jk_v)
        matrix_r = ref.responder_matrix_per_pair(self.VALUES_K, masked_r, jk_r)
        assert serialize(matrix_v) == serialize(matrix_r)
        jt_v, jt_r = _clones(4, kind)
        unmasked_v = num_vec.third_party_unmask_per_pair(matrix_v, jt_v, mask_bits)
        unmasked_r = ref.third_party_unmask_per_pair(matrix_r, jt_r, mask_bits)
        assert unmasked_v.tolist() == unmasked_r


@pytest.mark.parametrize("kind", ALL_KINDS)
@pytest.mark.parametrize("mask_bits", [20, 64, 80])
def test_numeric_mid_stream_generators_still_agree(kind, mask_bits):
    """Scalar Figure 5/6 semantics: row 0 consumes the generator's entry
    state, rows 1+ the post-reset state.  The vectorized engine must
    reproduce both even when handed a generator mid-stream."""
    values_j, values_k = [3, -15, 1000, 0], [8, 8, -100]
    jk_v, jk_r = _clones(1, kind)
    jt_v, jt_r = _clones(2, kind)
    for g in (jk_v, jk_r, jt_v, jt_r):
        g.next_uint64()
        g.next_uint64()
    masked = ref.initiator_mask_batch(values_j, make_prng(1, kind), make_prng(2, kind), mask_bits)
    matrix_v = num_vec.responder_matrix_batch(values_k, masked, jk_v)
    matrix_r = ref.responder_matrix_batch(values_k, masked, jk_r)
    assert matrix_v == matrix_r
    unmasked_v = num_vec.third_party_unmask_batch(matrix_v, jt_v, mask_bits)
    unmasked_r = ref.third_party_unmask_batch(matrix_r, jt_r, mask_bits)
    assert unmasked_v.tolist() == unmasked_r


@given(
    kind=st.sampled_from(ALL_KINDS),
    mask_bits=st.integers(16, 90),
    seed=st.integers(0, 2**32),
    values_j=st.lists(st.integers(-(2**66), 2**66), max_size=6),
    values_k=st.lists(st.integers(-(2**66), 2**66), max_size=5),
)
@settings(max_examples=60, deadline=None)
def test_property_numeric_batch_equivalence(kind, mask_bits, seed, values_j, values_k):
    jk_v, jk_r = _clones(seed, kind)
    jt_v, jt_r = _clones(seed + 1, kind)
    masked_v = num_vec.initiator_mask_batch(values_j, jk_v, jt_v, mask_bits)
    masked_r = ref.initiator_mask_batch(values_j, jk_r, jt_r, mask_bits)
    assert masked_v == masked_r
    assert jt_v.draws == jt_r.draws and jk_v.draws == jk_r.draws
    jk_v, jk_r = _clones(seed, kind)
    matrix_v = num_vec.responder_matrix_batch(values_k, masked_v, jk_v)
    matrix_r = ref.responder_matrix_batch(values_k, masked_r, jk_r)
    assert matrix_v == matrix_r
    jt_v, jt_r = _clones(seed + 1, kind)
    unmasked_v = num_vec.third_party_unmask_batch(matrix_v, jt_v, mask_bits)
    unmasked_r = ref.third_party_unmask_batch(matrix_r, jt_r, mask_bits)
    assert unmasked_v.tolist() == unmasked_r


@pytest.mark.parametrize("kind", ALL_KINDS)
@pytest.mark.parametrize(
    "alphabet", [DNA_ALPHABET, FIGURE7_ALPHABET, WIDE_ALPHABET]
)
class TestAlphanumericWireEquivalence:
    def _strings(self, alphabet, seed):
        rng = np.random.default_rng(seed)
        chars = alphabet.characters
        return [
            "".join(chars[i] for i in rng.integers(0, len(chars), size=size))
            for size in (0, 5, 9, 1, 7)
        ]

    def test_masked_strings_byte_identical(self, kind, alphabet):
        strings = self._strings(alphabet, 0)
        jt_v, jt_r = _clones(5, kind)
        masked_v = alnum_vec.initiator_mask_strings(strings, alphabet, jt_v)
        masked_r = ref.initiator_mask_strings(strings, alphabet, jt_r)
        assert serialize(masked_v) == serialize(masked_r)

    def test_decode_and_distances_match_reference(self, kind, alphabet):
        strings_j = self._strings(alphabet, 1)
        strings_k = self._strings(alphabet, 2)[1:]
        masked = ref.initiator_mask_strings(strings_j, alphabet, make_prng(6, kind))
        matrices = alnum_vec.responder_ccm_matrices(strings_k, masked, alphabet)
        for row in matrices:
            for intermediary in row:
                ccm_v = alnum_vec.third_party_decode_ccm(
                    intermediary, alphabet, make_prng(6, kind)
                )
                ccm_r = ref.third_party_decode_ccm(
                    intermediary, alphabet, make_prng(6, kind)
                )
                assert np.array_equal(ccm_v, ccm_r)
        distances = alnum_vec.third_party_distances(
            matrices, alphabet, make_prng(6, kind)
        )
        expected = [
            [
                edit_distance_from_ccm(
                    ref.third_party_decode_ccm(m, alphabet, make_prng(6, kind))
                )
                for m in row
            ]
            for row in matrices
        ]
        assert distances.tolist() == expected

    def test_mid_stream_generators_still_agree(self, kind, alphabet):
        """Scalar Figure 8/10 semantics: the first string/row consumes the
        generator's entry state, everything later the post-reset state.
        The vectorized engine reproduces both."""
        strings = self._strings(alphabet, 3)
        jt_v, jt_r = _clones(7, kind)
        jt_v.next_uint64()
        jt_r.next_uint64()
        assert alnum_vec.initiator_mask_strings(
            strings, alphabet, jt_v
        ) == ref.initiator_mask_strings(strings, alphabet, jt_r)
        masked = ref.initiator_mask_strings(strings, alphabet, make_prng(8, kind))
        matrices = alnum_vec.responder_ccm_matrices(strings[1:], masked, alphabet)
        jt_v, jt_r = _clones(8, kind)
        jt_v.next_uint64()
        jt_r.next_uint64()
        ccm_v = alnum_vec.third_party_decode_ccm(matrices[0][1], alphabet, jt_v)
        ccm_r = ref.third_party_decode_ccm(matrices[0][1], alphabet, jt_r)
        assert np.array_equal(ccm_v, ccm_r)
