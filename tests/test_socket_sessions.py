"""Multi-endpoint socket sessions: spec codec, transcript equality, crash
recovery and degraded completion.

The gate under test is the transport-pluggability contract: a session
run as N separate socket endpoints (threads here, real processes in the
supervisor tests) produces **byte-identical** per-lane transcripts and
published results to the in-process simulator run of the same spec --
including when one party is SIGKILLed mid-construction and restarted
from its checkpoint, and when a party dies permanently and the session
completes degraded.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
from pathlib import Path

import pytest

from repro.apps.cluster import (
    ClusterSupervisor,
    demo_spec,
    main as cluster_main,
    pick_tcp_addresses,
    unix_addresses,
)
from repro.apps.service import SNAPSHOT_FORMAT, ClusteringService
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import AttributeSpec, DataMatrix, Schema
from repro.data.taxonomy import Taxonomy
from repro.exceptions import ConfigurationError, SnapshotError
from repro.network.channel import Eavesdropper
from repro.network.serialization import deserialize, serialize
from repro.parties.runner import (
    PartyRunner,
    decode_spec,
    encode_spec,
    spec_fingerprint,
)
from repro.types import AttributeType

SCHEMA = Schema(
    [
        AttributeSpec("age", AttributeType.NUMERIC),
        AttributeSpec("job", AttributeType.CATEGORICAL),
    ]
)
ROWS = {
    "alpha": [[34, "eng"], [29, "doc"], [41, "eng"]],
    "beta": [[52, "law"], [38, "doc"]],
}
PARTIES = sorted(ROWS) + ["TP"]


def _config(**kw):
    return SessionConfig(num_clusters=2, master_seed=7, **kw)


def _partitions():
    return {s: DataMatrix(SCHEMA, [tuple(r) for r in rs]) for s, rs in ROWS.items()}


def _simulator_reference(config=None):
    """Fault-free simulator run with every channel tapped: returns the
    per-directed-lane wire digests and the published result."""
    session = ClusteringSession(config or _config(), _partitions(), tp_name="TP")
    tap = Eavesdropper("ref")
    for i, a in enumerate(PARTIES):
        for b in PARTIES[i + 1 :]:
            session.network.channel(a, b).attach_tap(tap)
    result = session.run()
    lanes: dict[tuple[str, str], list[tuple[str, str, str]]] = {}
    for frame in tap.frames:
        lanes.setdefault((frame.sender, frame.recipient), []).append(
            (frame.kind, frame.tag, hashlib.sha256(frame.wire).hexdigest())
        )
    return lanes, result


def _socket_lanes(reports, era=None):
    lanes: dict[tuple[str, str], list[tuple[str, str, str]]] = {}
    for party, report in reports.items():
        for frame_era, recipient, kind, tag, digest in report["transcript"]:
            if era is not None and frame_era != era:
                continue
            lanes.setdefault((party, recipient), []).append((kind, tag, digest))
    return lanes


def _run_threaded(spec, parties=PARTIES, timeout=90.0):
    """Drive every endpooint of one socket session on its own thread."""
    runners = {p: PartyRunner(spec, p) for p in parties}
    reports: dict[str, dict] = {}
    errors: dict[str, BaseException] = {}

    def drive(party):
        try:
            reports[party] = runners[party].run()
        except BaseException as exc:  # surfaced below, never swallowed
            errors[party] = exc

    threads = [threading.Thread(target=drive, args=(p,)) for p in parties]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    for runner in runners.values():
        runner.close()
    assert not errors, f"party errors: {errors}"
    assert set(reports) == set(parties)
    return reports


# -- session spec codec ------------------------------------------------------


class TestSessionSpec:
    def test_round_trip(self, tmp_path):
        spec_bytes = encode_spec(
            _config(), SCHEMA, ROWS, unix_addresses(PARTIES, str(tmp_path))
        )
        spec = decode_spec(spec_bytes)
        assert sorted(spec["partitions"]) == ["alpha", "beta"]
        assert spec["tp_name"] == "TP"
        assert [a["name"] for a in spec["schema"]] == ["age", "job"]
        # Same bytes -> same fingerprint; any byte flip changes it.
        assert spec_fingerprint(spec_bytes) == spec_fingerprint(spec_bytes)
        assert spec_fingerprint(spec_bytes) != spec_fingerprint(spec_bytes + b"x")

    def test_taxonomy_attributes_rejected(self, tmp_path):
        schema = Schema(
            [
                AttributeSpec(
                    "cat",
                    AttributeType.CATEGORICAL,
                    taxonomy=Taxonomy({"root": None, "a": "root", "b": "root"}),
                )
            ]
        )
        with pytest.raises(ConfigurationError, match="taxonomy"):
            encode_spec(
                _config(),
                schema,
                {"alpha": [["a"]], "beta": [["b"]]},
                unix_addresses(PARTIES, str(tmp_path)),
            )

    def test_decode_rejects_garbage_and_wrong_format(self):
        with pytest.raises(ConfigurationError, match="unsupported"):
            decode_spec(serialize([1, 2, 3]))
        spec = deserialize(
            encode_spec(_config(), SCHEMA, ROWS, unix_addresses(PARTIES, "/tmp"))
        )
        spec["format"] = 999
        with pytest.raises(ConfigurationError, match="unsupported"):
            decode_spec(serialize(spec))

    def test_decode_rejects_tp_collision_and_missing_address(self):
        addresses = unix_addresses(PARTIES, "/tmp")
        with pytest.raises(ConfigurationError, match="collides"):
            decode_spec(
                encode_spec(_config(), SCHEMA, ROWS, addresses, tp_name="alpha")
            )
        with pytest.raises(ConfigurationError, match="no address"):
            decode_spec(
                encode_spec(
                    _config(),
                    SCHEMA,
                    ROWS,
                    {p: a for p, a in addresses.items() if p != "beta"},
                )
            )

    def test_unknown_transport_tuning_rejected(self, tmp_path):
        spec = encode_spec(
            _config(),
            SCHEMA,
            ROWS,
            unix_addresses(PARTIES, str(tmp_path)),
            transport={"dead_after": 2.0, "warp_speed": True},
        )
        with pytest.raises(ConfigurationError, match="warp_speed"):
            PartyRunner(spec, "alpha")

    def test_parallel_schedule_rejected(self, tmp_path):
        config = _config(
            suite=ProtocolSuiteConfig(construction_schedule="parallel")
        )
        with pytest.raises(ConfigurationError, match="sequential"):
            encode_spec(
                config, SCHEMA, ROWS, unix_addresses(PARTIES, str(tmp_path))
            )

    def test_unknown_party_rejected(self, tmp_path):
        spec = encode_spec(
            _config(), SCHEMA, ROWS, unix_addresses(PARTIES, str(tmp_path))
        )
        with pytest.raises(ConfigurationError, match="not named"):
            PartyRunner(spec, "gamma")


# -- transcript equality: sockets vs simulator -------------------------------


class TestTranscriptEquality:
    @pytest.mark.parametrize("scheme", ["unix", "tcp"])
    def test_socket_session_matches_simulator(self, tmp_path, scheme):
        """Three endpoints over real sockets replay the simulator run
        byte for byte: same lanes, same frame order, same sealed bytes,
        same published result at every party."""
        ref_lanes, ref_result = _simulator_reference()
        if scheme == "unix":
            addresses = unix_addresses(PARTIES, str(tmp_path))
        else:
            addresses = pick_tcp_addresses(PARTIES)
        spec = encode_spec(_config(), SCHEMA, ROWS, addresses)
        reports = _run_threaded(spec)
        assert _socket_lanes(reports) == ref_lanes
        payload = ref_result.to_payload()
        assert all(reports[p]["result"] == payload for p in PARTIES)
        assert all(reports[p]["era"] == 3 for p in PARTIES)

    def test_insecure_channels_still_match(self, tmp_path):
        config = _config(suite=ProtocolSuiteConfig(secure_channels=False))
        ref_lanes, ref_result = _simulator_reference(config)
        spec = encode_spec(
            config, SCHEMA, ROWS, unix_addresses(PARTIES, str(tmp_path))
        )
        reports = _run_threaded(spec)
        assert _socket_lanes(reports) == ref_lanes
        assert reports["TP"]["result"] == ref_result.to_payload()


# -- multi-process supervisor ------------------------------------------------


def _write_spec(tmp_path, spec):
    spec_path = tmp_path / "session.spec"
    spec_path.write_bytes(spec)
    return str(spec_path)


class TestClusterSupervisor:
    def test_kill_and_restart_resumes_bit_identically(self, tmp_path):
        """SIGKILL one holder mid-construction; the supervisor restarts
        it from its checkpoint, survivors reset their era, and the final
        era replays the whole construction byte-identically (the
        simulator transcript minus the already-checkpointed group-key
        frames)."""
        ref_lanes, ref_result = _simulator_reference()
        spec = encode_spec(
            _config(),
            SCHEMA,
            ROWS,
            unix_addresses(PARTIES, str(tmp_path)),
            # Survivors must outwait the respawn (interpreter start +
            # numpy/scipy imports, seconds on a loaded CI runner):
            # death declared mid-restart is sticky and unrecoverable.
            transport={"dead_after": 60.0},
        )
        supervisor = ClusterSupervisor(
            _write_spec(tmp_path, spec),
            str(tmp_path),
            kill_after_step={"beta": "age:send_local[beta]"},
        )
        reports = supervisor.run()
        final_era = max(r["era"] for r in reports.values())
        assert final_era == 4  # beta's restart bumped the initial era 3
        assert all(r["era"] == final_era for r in reports.values())
        ref_minus_group_key = {
            lane: [e for e in entries if e[0] != "group_key"]
            for lane, entries in ref_lanes.items()
        }
        ref_minus_group_key = {
            lane: entries for lane, entries in ref_minus_group_key.items() if entries
        }
        assert _socket_lanes(reports, era=final_era) == ref_minus_group_key
        payload = ref_result.to_payload()
        assert all(r["result"] == payload for r in reports.values())

    def test_memmap_backend_survives_sigkill(self, tmp_path):
        """Crash-safety of the sharded storage backend: the whole session
        runs with its matrices on memmap row-block shards, one holder is
        SIGKILLed mid-construction, and the supervisor's restore replays
        to a final matrix and published result bit-identical to the
        fault-free *in-memory* simulator run -- the backend is invisible
        to the recovery machinery and to the published bytes."""
        ref_lanes, ref_result = _simulator_reference()
        suite = ProtocolSuiteConfig(
            store_backend="memmap",
            store_block_entries=16,
            store_cache_bytes=512,
            store_dir=str(tmp_path / "shards"),
        )
        spec = encode_spec(
            _config(suite=suite),
            SCHEMA,
            ROWS,
            unix_addresses(PARTIES, str(tmp_path)),
            transport={"dead_after": 60.0},
        )
        supervisor = ClusterSupervisor(
            _write_spec(tmp_path, spec),
            str(tmp_path),
            kill_after_step={"beta": "age:send_local[beta]"},
        )
        reports = supervisor.run()
        final_era = max(r["era"] for r in reports.values())
        assert all(r["era"] == final_era for r in reports.values())
        ref_minus_group_key = {
            lane: [e for e in entries if e[0] != "group_key"]
            for lane, entries in ref_lanes.items()
        }
        ref_minus_group_key = {
            lane: entries for lane, entries in ref_minus_group_key.items() if entries
        }
        assert _socket_lanes(reports, era=final_era) == ref_minus_group_key
        payload = ref_result.to_payload()
        assert all(r["result"] == payload for r in reports.values())

    def test_permanent_death_degrades(self, tmp_path):
        """A party that is killed and never restarted goes DEAD at its
        peers; with a fault-tolerant suite the TP publishes the merged
        result over every completed attribute to the survivors."""
        config = _config(suite=ProtocolSuiteConfig(tolerate_faults=True))
        _, ref_result = _simulator_reference(_config())
        spec = encode_spec(
            config,
            SCHEMA,
            ROWS,
            unix_addresses(PARTIES, str(tmp_path)),
            transport={"dead_after": 1.0, "heartbeat_interval": 0.1},
        )
        supervisor = ClusterSupervisor(
            _write_spec(tmp_path, spec),
            str(tmp_path),
            # "job:send_encrypted[beta]" is beta's LAST own construction
            # step: every attribute completes, only the weights are lost.
            kill_after_step={"beta": "job:send_encrypted[beta]"},
            tolerate_killed={"beta"},
            restart_killed=False,
        )
        reports = supervisor.run()
        assert reports["beta"] is None
        tp = reports["TP"]
        assert tp["unreachable"] == ["beta"]
        assert tp["completed_attributes"] == ["age", "job"]
        # Construction finished before the kill, so the degraded result
        # equals the fault-free reference (only beta's weights are lost,
        # and weights default to equal).
        payload = ref_result.to_payload()
        assert tp["result"] == payload
        assert reports["alpha"]["result"] == payload

    def test_demo_cli_runs_end_to_end(self, tmp_path, capsys):
        assert (
            cluster_main(["demo", "--workdir", str(tmp_path), "--timeout", "120"])
            == 0
        )
        out = capsys.readouterr().out
        assert "clusters:" in out

    def test_demo_spec_is_deterministic(self, tmp_path):
        assert demo_spec(str(tmp_path)) == demo_spec(str(tmp_path))


# -- structured snapshot errors ----------------------------------------------


def _service():
    return ClusteringService(_config(), _partitions())


class TestSnapshotErrors:
    def test_truncated_blob(self):
        blob = _service().snapshot()
        with pytest.raises(SnapshotError, match="truncated or corrupted"):
            ClusteringService.restore(_config(), SCHEMA, blob[: len(blob) // 2])

    def test_corrupted_blob(self):
        blob = bytearray(_service().snapshot())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(SnapshotError):
            ClusteringService.restore(_config(), SCHEMA, bytes(blob))

    def test_wrong_format_version(self):
        with pytest.raises(SnapshotError, match="unsupported snapshot format"):
            ClusteringService.restore(
                _config(), SCHEMA, serialize({"format": SNAPSHOT_FORMAT + 1})
            )

    def test_non_dict_blob(self):
        with pytest.raises(SnapshotError, match="must decode to a dict"):
            ClusteringService.restore(_config(), SCHEMA, serialize([1, 2]))

    def test_missing_sections(self):
        state = deserialize(_service().snapshot())
        del state["holder_entropy"]
        with pytest.raises(SnapshotError, match="holder_entropy"):
            ClusteringService.restore(_config(), SCHEMA, serialize(state))

    def test_sites_and_rows_disagree(self):
        state = deserialize(_service().snapshot())
        state["holder_rows"]["gamma"] = [[1, "x"]]
        with pytest.raises(SnapshotError, match="disagree on the consortium"):
            ClusteringService.restore(_config(), SCHEMA, serialize(state))

    def test_mismatched_schema(self):
        blob = _service().snapshot()
        other = Schema([AttributeSpec("age", AttributeType.NUMERIC)])
        with pytest.raises(SnapshotError, match="different session config"):
            ClusteringService.restore(_config(), other, blob)

    def test_row_count_disagreement(self):
        state = deserialize(_service().snapshot())
        state["sites"]["alpha"] = 99
        with pytest.raises(SnapshotError, match="disagree with its recorded size"):
            ClusteringService.restore(_config(), SCHEMA, serialize(state))

    def test_snapshot_error_is_a_configuration_error(self):
        # Pre-existing callers that catch ConfigurationError keep working.
        assert issubclass(SnapshotError, ConfigurationError)
