"""Protocol transcript structure: the exact message choreography.

Pins the message sequence of a minimal session against the paper's
protocol order (Figure 11 driving Figures 4-6 / 8-10 / §4.3).  Any
change to who-sends-what-when shows up here first.
"""

from __future__ import annotations

from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.network.channel import Eavesdropper
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("num", AttributeType.NUMERIC, precision=0),
    AttributeSpec("seq", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    AttributeSpec("cat", AttributeType.CATEGORICAL),
]


def _transcript(num_sites: int = 2) -> list[tuple[str, str, str]]:
    """(sender, recipient, kind) triples of a full session, in order."""
    rows = [[i, "ACGT", "x"] for i in range(num_sites * 2)]
    partitions = {
        chr(ord("A") + s): DataMatrix(SCHEMA, rows[2 * s : 2 * s + 2])
        for s in range(num_sites)
    }
    suite = ProtocolSuiteConfig(secure_channels=False)
    session = ClusteringSession(
        SessionConfig(num_clusters=2, suite=suite), partitions
    )
    tap = Eavesdropper("observer")
    sites = list(session.index.sites)
    for i, a in enumerate(sites + ["TP"]):
        for b in (sites + ["TP"])[i + 1 :]:
            session.network.attach_tap(a, b, tap)
    session.run()
    return [(f.sender, f.recipient, f.kind) for f in tap.frames]


class TestTranscript:
    def test_two_party_choreography(self):
        transcript = _transcript(2)
        expected = [
            # group key setup (categorical attribute present)
            ("A", "B", "group_key"),
            # attribute 1: numeric (Figure 11 + Figures 4-6)
            ("A", "TP", "local_matrix"),
            ("B", "TP", "local_matrix"),
            ("A", "B", "masked_vector"),
            ("B", "TP", "comparison_matrix"),
            # attribute 2: alphanumeric (Figures 8-10)
            ("A", "TP", "local_matrix"),
            ("B", "TP", "local_matrix"),
            ("A", "B", "masked_strings"),
            ("B", "TP", "ccm_matrices"),
            # attribute 3: categorical (§4.3 -- no cross rounds)
            ("A", "TP", "encrypted_column"),
            ("B", "TP", "encrypted_column"),
            # weights (Section 5)
            ("A", "TP", "weights"),
            ("B", "TP", "weights"),
            # publication (Figure 13)
            ("TP", "A", "result"),
            ("TP", "B", "result"),
        ]
        assert transcript == expected

    def test_three_party_protocol_run_count(self):
        """C(k, 2) comparison-protocol runs per non-categorical attribute."""
        transcript = _transcript(3)
        comparison_runs = [t for t in transcript if t[2] == "comparison_matrix"]
        ccm_runs = [t for t in transcript if t[2] == "ccm_matrices"]
        assert len(comparison_runs) == 3  # C(3,2)
        assert len(ccm_runs) == 3

    def test_initiator_is_lexicographically_smaller(self):
        """All parties derive the initiator without negotiation."""
        transcript = _transcript(3)
        for sender, recipient, kind in transcript:
            if kind in ("masked_vector", "masked_strings"):
                assert sender < recipient

    def test_tp_never_talks_to_holders_before_publication(self):
        """The TP is a sink until it publishes (Section 3: it governs by
        receiving, never by revealing)."""
        transcript = _transcript(2)
        tp_sends = [t for t in transcript if t[0] == "TP"]
        assert all(kind == "result" for _, _, kind in tp_sends)
        first_tp_send = transcript.index(tp_sends[0])
        assert all(t[0] != "TP" for t in transcript[:first_tp_send])

    def test_holders_never_exchange_raw_kinds(self):
        """Holder-to-holder traffic carries only masked/setup payloads."""
        transcript = _transcript(3)
        holder_links = [
            t for t in transcript if t[0] != "TP" and t[1] != "TP"
        ]
        assert {kind for _, _, kind in holder_links} <= {
            "group_key",
            "masked_vector",
            "masked_strings",
        }
