"""Tests for serialization, channels and the network simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prng import make_prng
from repro.exceptions import ChannelError, ProtocolError
from repro.network.channel import Channel, Eavesdropper
from repro.network.serialization import deserialize, serialize, serialized_size
from repro.network.simulator import Network


class TestSerialization:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**200,
            -(2**200),
            1.5,
            -0.0,
            "",
            "héllo",
            b"",
            b"\x00\xff",
            [],
            [1, "two", None],
            (1, 2),
            {"a": 1, "b": [2, 3]},
            [[1, 2], [3, [4]]],
        ],
    )
    def test_roundtrip(self, value):
        assert deserialize(serialize(value)) == value

    def test_array_roundtrip(self):
        for dtype in (np.uint8, np.int64, np.float64):
            arr = np.arange(12, dtype=dtype).reshape(3, 4)
            out = deserialize(serialize(arr))
            assert out.dtype == arr.dtype
            assert np.array_equal(out, arr)

    def test_nested_arrays_in_lists(self):
        value = [[np.ones((2, 2), dtype=np.uint8)], "tag"]
        out = deserialize(serialize(value))
        assert np.array_equal(out[0][0], value[0][0])

    def test_numpy_scalars_coerced(self):
        assert deserialize(serialize(np.int64(7))) == 7
        assert deserialize(serialize(np.float64(1.5))) == 1.5

    def test_unsupported_type_rejected(self):
        with pytest.raises(ChannelError):
            serialize(object())

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ChannelError):
            serialize(np.array(["a"], dtype=object))

    def test_non_str_dict_key_rejected(self):
        with pytest.raises(ChannelError):
            serialize({1: "x"})

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ChannelError):
            deserialize(serialize(1) + b"junk")

    def test_truncated_rejected(self):
        data = serialize([1, 2, 3])
        with pytest.raises(ChannelError):
            deserialize(data[:-2])

    def test_int_size_scales_with_magnitude(self):
        """Cost realism: big masked values cost what big ints cost."""
        small = serialized_size(1)
        large = serialized_size(2**512)
        assert large - small == pytest.approx(64, abs=2)

    def test_bool_not_confused_with_int(self):
        assert deserialize(serialize(True)) is True
        assert deserialize(serialize(1)) == 1

    def test_numpy_bool_scalars(self):
        """np.bool_ is neither bool nor np.integer; it gets the bool tag."""
        assert deserialize(serialize(np.bool_(True))) is True
        assert deserialize(serialize(np.bool_(False))) is False
        assert serialize(np.bool_(True)) == serialize(True)
        assert deserialize(serialize([np.bool_(True), 1])) == [True, 1]

    def test_truncated_int_run_raises_not_misparses(self):
        """A declared count with a truncated I-run tail must raise."""
        data = serialize([2**40, 2**41, 2**42])
        for cut in range(1, len(data)):
            with pytest.raises(ChannelError, match="truncated message"):
                deserialize(data[:cut])

    def test_truncation_error_reports_offset_and_deficit(self):
        """Truncation diagnostics name the offset, need, and remainder."""
        data = serialize([1, 2, 3])
        with pytest.raises(ChannelError, match="truncated message") as exc:
            deserialize(data[:-2])
        detail = str(exc.value)
        assert "offset" in detail
        assert f"of {len(data) - 2} remain" in detail

    def test_truncated_int_run_error_names_record(self):
        """A cut I-run body reports the record's offset and declared size."""
        data = serialize([2**40, 2**41])
        with pytest.raises(ChannelError, match="truncated message") as exc:
            deserialize(data[:-1])
        detail = str(exc.value)
        assert "integer record at offset" in detail
        assert f"holds only {len(data) - 1} byte(s)" in detail

    def test_malformed_length_field_in_run(self):
        """A record whose length field points past the buffer raises."""
        good = bytearray(serialize([7] * 50))
        # Corrupt one record's length field to a huge value.
        good[6 + 3 * 7 + 4] = 0xFF
        with pytest.raises(ChannelError):
            deserialize(bytes(good))

    def test_serialized_size_matches_serialize(self):
        values = [
            None, True, np.bool_(False), 0, -(2**200), 1.5, "héllo", b"\x00",
            [1, "two", None], [2**64 - 1, 2**64, -5], (1, 2),
            {"a": 1, "b": [2, 3]}, np.arange(12, dtype=np.int64).reshape(3, 4),
            np.int64(7), np.float64(1.5),
        ]
        for value in values:
            assert serialized_size(value) == len(serialize(value)), value
        assert serialized_size(values) == len(serialize(values))

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-(2**70), 2**70),
                st.floats(allow_nan=False),
                st.text(max_size=20),
                st.binary(max_size=20),
            ),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=5), children, max_size=4),
            max_leaves=20,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, value):
        assert deserialize(serialize(value)) == value


class TestChannel:
    def test_insecure_transmit(self):
        ch = Channel("A", "B", secure=False)
        msg = ch.transmit("A", "B", "kind", "tag", {"x": 1})
        assert msg.payload == {"x": 1}
        assert not msg.sealed

    def test_secure_transmit_roundtrip(self):
        ch = Channel("A", "B", secure=True, key=b"k" * 32, entropy=make_prng(1))
        msg = ch.transmit("A", "B", "kind", "tag", [1, 2, 3])
        assert msg.payload == [1, 2, 3]
        assert msg.sealed

    def test_secure_requires_key(self):
        with pytest.raises(ChannelError):
            Channel("A", "B", secure=True)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ChannelError):
            Channel("A", "A", secure=False)

    def test_non_endpoint_rejected(self):
        ch = Channel("A", "B", secure=False)
        with pytest.raises(ChannelError):
            ch.transmit("A", "C", "k", "", 1)

    def test_stats_directional(self):
        ch = Channel("A", "B", secure=False)
        ch.transmit("A", "B", "k", "", [1] * 100)
        ch.transmit("B", "A", "k", "", 1)
        assert ch.stats("A", "B").messages == 1
        assert ch.stats("B", "A").messages == 1
        assert ch.stats("A", "B").wire_bytes > ch.stats("B", "A").wire_bytes

    def test_kind_stats_separate(self):
        ch = Channel("A", "B", secure=False)
        ch.transmit("A", "B", "alpha", "", [1, 2])
        ch.transmit("A", "B", "beta", "", [1])
        assert ch.kind_stats("A", "B", "alpha").messages == 1
        assert ch.kind_stats("A", "B", "beta").messages == 1

    def test_secure_overhead_counted(self):
        insecure = Channel("A", "B", secure=False)
        secure = Channel("A", "B", secure=True, key=b"k" * 32, entropy=make_prng(2))
        payload = [1, 2, 3]
        insecure.transmit("A", "B", "k", "", payload)
        secure.transmit("A", "B", "k", "", payload)
        delta = (
            secure.stats("A", "B").wire_bytes - insecure.stats("A", "B").wire_bytes
        )
        assert delta == 48  # nonce + tag

    def test_eavesdropper_reads_insecure(self):
        ch = Channel("A", "B", secure=False)
        tap = Eavesdropper("mallory")
        ch.attach_tap(tap)
        ch.transmit("A", "B", "k", "", {"secret": 42})
        assert len(tap.frames) == 1
        assert tap.frames[0].try_read_payload() == {"secret": 42}

    def test_eavesdropper_blocked_on_secure(self):
        ch = Channel("A", "B", secure=True, key=b"k" * 32, entropy=make_prng(3))
        tap = Eavesdropper("mallory")
        ch.attach_tap(tap)
        ch.transmit("A", "B", "k", "", {"secret": 42})
        with pytest.raises(ChannelError):
            tap.frames[0].try_read_payload()

    def test_frames_between_filter(self):
        ch = Channel("A", "B", secure=False)
        tap = Eavesdropper("m")
        ch.attach_tap(tap)
        ch.transmit("A", "B", "k", "", 1)
        ch.transmit("B", "A", "k", "", 2)
        assert len(tap.frames_between("A", "B")) == 1
        assert len(tap.frames_between("B", "A")) == 1


class TestNetwork:
    def _net(self):
        net = Network()
        for name in ("A", "B", "TP"):
            net.add_party(name)
        net.connect("A", "B", secure=False)
        net.connect("A", "TP", secure=False)
        net.connect("B", "TP", secure=False)
        return net

    def test_send_receive_fifo(self):
        net = self._net()
        net.send("A", "B", "k1", 1)
        net.send("A", "B", "k2", 2)
        assert net.receive("B").payload == 1
        assert net.receive("B").payload == 2

    def test_kind_assertion(self):
        net = self._net()
        net.send("A", "B", "good", 1)
        with pytest.raises(ProtocolError):
            net.receive("B", kind="expected")

    def test_sender_assertion(self):
        net = self._net()
        net.send("A", "B", "k", 1)
        with pytest.raises(ProtocolError):
            net.receive("B", sender="TP")

    def test_empty_queue_raises(self):
        net = self._net()
        with pytest.raises(ProtocolError):
            net.receive("A")

    def test_duplicate_party_rejected(self):
        net = self._net()
        with pytest.raises(ChannelError):
            net.add_party("A")

    def test_duplicate_channel_rejected(self):
        net = self._net()
        with pytest.raises(ChannelError):
            net.connect("A", "B", secure=False)

    def test_unknown_channel(self):
        net = Network()
        net.add_party("A")
        net.add_party("B")
        with pytest.raises(ChannelError):
            net.channel("A", "B")

    def test_byte_accounting(self):
        net = self._net()
        net.send("A", "B", "k", [1] * 50)
        net.send("B", "TP", "k", [1] * 10)
        assert net.bytes_sent_by("A") > net.bytes_sent_by("B") > 0
        assert net.bytes_sent_by("TP") == 0
        assert net.total_bytes() == net.bytes_sent_by("A") + net.bytes_sent_by("B")
        assert net.bytes_on_link("A", "B") == net.bytes_sent_by("A")
        assert net.messages_sent_by("A") == 1

    def test_bytes_of_kind(self):
        net = self._net()
        net.send("A", "B", "alpha", [1] * 20)
        net.send("A", "B", "beta", 1)
        assert net.bytes_of_kind("A", "B", "alpha") > net.bytes_of_kind(
            "A", "B", "beta"
        )
        assert net.bytes_of_kind("A", "B", "gamma") == 0

    def test_assert_drained(self):
        net = self._net()
        net.assert_drained()
        net.send("A", "B", "k", 1)
        with pytest.raises(ProtocolError):
            net.assert_drained()
        net.receive("B")
        net.assert_drained()

    def test_pending(self):
        net = self._net()
        assert net.pending("B") == 0
        net.send("A", "B", "k", 1)
        assert net.pending("B") == 1
