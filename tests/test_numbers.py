"""Tests for the number-theory helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.numbers import (
    bytes_to_int,
    crt_pair,
    egcd,
    generate_distinct_primes,
    generate_prime,
    int_to_bytes,
    is_probable_prime,
    lcm,
    modinv,
    product,
)
from repro.crypto.prng import make_prng
from repro.exceptions import CryptoError


class TestEgcd:
    def test_known_values(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_coprime(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    @given(a=st.integers(1, 10**12), b=st.integers(1, 10**12))
    @settings(max_examples=100, deadline=None)
    def test_property_bezout(self, a, b):
        g, x, y = egcd(a, b)
        assert a % g == 0 and b % g == 0
        assert a * x + b * y == g


class TestModinv:
    def test_known(self):
        assert modinv(3, 7) == 5
        assert (3 * modinv(3, 7)) % 7 == 1

    def test_no_inverse_raises(self):
        with pytest.raises(CryptoError):
            modinv(6, 9)

    @given(a=st.integers(1, 10**9), m=st.integers(2, 10**9))
    @settings(max_examples=100, deadline=None)
    def test_property_inverse(self, a, m):
        g, _, _ = egcd(a % m, m)
        if g == 1:
            assert (a * modinv(a, m)) % m == 1
        else:
            with pytest.raises(CryptoError):
                modinv(a, m)


class TestLcm:
    @pytest.mark.parametrize(
        "a,b,expected", [(4, 6, 12), (3, 5, 15), (0, 5, 0), (7, 7, 7), (1, 9, 9)]
    )
    def test_known(self, a, b, expected):
        assert lcm(a, b) == expected

    @given(a=st.integers(1, 10**6), b=st.integers(1, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_property_divisibility(self, a, b):
        value = lcm(a, b)
        assert value % a == 0 and value % b == 0
        assert value <= a * b


class TestPrimality:
    SMALL_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729]
    SMALL_COMPOSITES = [0, 1, 4, 9, 15, 561, 1105, 7917, 104730]
    CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911]

    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_primes_accepted(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", SMALL_COMPOSITES)
    def test_composites_rejected(self, c):
        assert not is_probable_prime(c)

    @pytest.mark.parametrize("c", CARMICHAELS)
    def test_carmichael_numbers_rejected(self, c):
        """Carmichael numbers fool Fermat tests but not Miller-Rabin."""
        assert not is_probable_prime(c)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)
        assert not is_probable_prime(2**127 - 3)

    def test_with_random_witnesses(self):
        g = make_prng(5)
        assert is_probable_prime(2**89 - 1, g.rand_bits_callable())


class TestGeneration:
    def test_generated_prime_properties(self):
        g = make_prng(11)
        for bits in (16, 32, 64, 128):
            p = generate_prime(bits, g.rand_bits_callable())
            assert p.bit_length() == bits
            assert is_probable_prime(p)
            assert p % 2 == 1

    def test_top_two_bits_set(self):
        """Keygen relies on p*q having exactly 2*bits bits."""
        g = make_prng(12)
        p = generate_prime(48, g.rand_bits_callable())
        q = generate_prime(48, g.rand_bits_callable())
        assert (p * q).bit_length() == 96

    def test_distinct_primes(self):
        g = make_prng(13)
        p, q = generate_distinct_primes(32, g.rand_bits_callable())
        assert p != q
        assert is_probable_prime(p) and is_probable_prime(q)

    def test_too_small_rejected(self):
        g = make_prng(14)
        with pytest.raises(CryptoError):
            generate_prime(4, g.rand_bits_callable())

    def test_deterministic_given_seed(self):
        a = generate_prime(40, make_prng(15).rand_bits_callable())
        b = generate_prime(40, make_prng(15).rand_bits_callable())
        assert a == b


class TestCrtAndBytes:
    def test_crt_pair(self):
        p, q = 11, 13
        value = 97
        q_inv_p = modinv(q, p)
        assert crt_pair(value % p, value % q, p, q, q_inv_p) % (p * q) == value

    @given(n=st.integers(0, 2**256))
    @settings(max_examples=100, deadline=None)
    def test_property_bytes_roundtrip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    def test_negative_encoding_rejected(self):
        with pytest.raises(CryptoError):
            int_to_bytes(-1)

    def test_product(self):
        assert product([]) == 1
        assert product([2, 3, 7]) == 42
