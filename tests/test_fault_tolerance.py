"""Fault injection, reliable delivery, degradation and checkpoint/resume.

The contract under test, end to end: for any *maskable* seeded fault
schedule (rates the retry budget can absorb, transient outages), the
session's results -- per-attribute matrices, merged matrix, dendrogram,
medoids, published payloads -- are **bit-identical** to the fault-free
run; only wire-byte totals and nonce-to-frame assignment may move.
Unmaskable faults (permanent crashes, dead lanes) degrade into precise
reports instead of wrong answers.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.service import SNAPSHOT_FORMAT, ClusteringService
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import CHAOS_PRESET_ENV, ClusteringSession
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.exceptions import (
    ChannelError,
    ConfigurationError,
    LaneTimeoutError,
    PartyCrashError,
    ProtocolError,
)
from repro.network.faults import (
    PRESETS,
    CrashEvent,
    FaultPlan,
    FaultRule,
)
from repro.network.retry import RetryPolicy
from repro.network.serialization import serialize
from repro.network.simulator import Network
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("num", AttributeType.NUMERIC, precision=0),
    AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    AttributeSpec("city", AttributeType.CATEGORICAL),
]


def _partitions(num_sites: int = 3):
    rows = [[i, "ACGT" if i % 2 else "TTGT", f"c{i % 3}"] for i in range(num_sites * 2)]
    return {
        chr(ord("A") + s): DataMatrix(SCHEMA, rows[2 * s : 2 * s + 2])
        for s in range(num_sites)
    }


def _session(
    schedule: str = "sequential",
    fault_plan: FaultPlan | None = None,
    tolerate: bool = False,
    workers: int = 2,
    master_seed: int = 3,
):
    suite = ProtocolSuiteConfig(
        construction_schedule=schedule, tolerate_faults=tolerate
    )
    config = SessionConfig(
        num_clusters=2, master_seed=master_seed, max_workers=workers, suite=suite
    )
    return ClusteringSession(config, _partitions(), fault_plan=fault_plan)


def _fingerprint(session: ClusteringSession, result) -> tuple:
    return (
        str(result.to_payload()),
        session.final_matrix().condensed.tolist(),
        {
            spec.name: session.third_party.attribute_matrix(spec.name).condensed.tolist()
            for spec in SCHEMA
        },
    )


@pytest.fixture(scope="module")
def clean_fingerprint():
    session = _session()
    return _fingerprint(session, session.run())


# -- fault plan unit behaviour ----------------------------------------------


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, drop=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, max_delay_polls=0)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, script={("A", "B", "k"): ("explode",)})
        with pytest.raises(ConfigurationError):
            FaultRule(corrupt=-0.1)
        with pytest.raises(ConfigurationError):
            CrashEvent("A", after_frames=-1)
        with pytest.raises(ConfigurationError):
            CrashEvent("A", after_frames=0, down_for=0)
        with pytest.raises(ConfigurationError):
            FaultPlan.preset("tsunami", seed=1)
        assert set(PRESETS) == {"lossy", "crashy"}

    def test_same_seed_same_decisions(self):
        """A plan is a pure function of (seed, lane, frame ordinal)."""
        make = lambda: FaultPlan(seed=77, drop=0.3, duplicate=0.3, corrupt=0.3, delay=0.3)
        first, second = make(), make()
        lanes = [("A", "B", "k", "t"), ("B", "A", "k", "t"), ("A", "B", "other", "")]
        # Consume the two plans in different global orders (round-robin
        # vs lane-major): per-lane streams make the n-th frame of a lane
        # independent of how other lanes interleave with it.
        round_robin: dict[tuple, list] = {lane: [] for lane in lanes}
        for _ in range(10):
            for lane in lanes:
                round_robin[lane].append(first.decide(*lane))
        lane_major = {
            lane: [second.decide(*lane) for _ in range(10)] for lane in lanes
        }
        assert round_robin == lane_major

    def test_script_consumed_in_order_then_rates(self):
        plan = FaultPlan(seed=1, script={("A", "B", "k"): ("drop", "duplicate")})
        first = plan.decide("A", "B", "k", "t")
        second = plan.decide("A", "B", "k", "t")
        third = plan.decide("A", "B", "k", "t")
        assert not first.deliver
        assert second.duplicate and second.deliver
        assert third.deliver and not third.duplicate  # rates are all zero

    def test_scripts_do_not_touch_other_lanes(self):
        plan = FaultPlan(seed=1, script={("A", "B", "k"): ("drop",)})
        other = plan.decide("A", "C", "k", "t")
        assert other.deliver and not other.corrupt

    def test_retransmissions_clean_unless_opted_in(self):
        lossy = FaultPlan(seed=1, drop=1.0)
        assert not lossy.decide("A", "B", "k", "t").deliver
        assert lossy.decide("A", "B", "k", "t", retransmission=True).deliver
        relentless = FaultPlan(seed=1, drop=1.0, fault_retransmits=True)
        assert not relentless.decide("A", "B", "k", "t", retransmission=True).deliver

    def test_rules_override_defaults_first_match_wins(self):
        plan = FaultPlan(
            seed=1,
            drop=1.0,
            rules=(
                FaultRule(sender="A", recipient="B", kind="k", drop=0.0),
                FaultRule(sender="A", drop=1.0),
            ),
        )
        assert plan.decide("A", "B", "k", "t").deliver
        assert not plan.decide("A", "B", "other", "t").deliver

    def test_corrupt_tamper_mask_is_nonzero(self):
        plan = FaultPlan(seed=1, corrupt=1.0)
        for _ in range(20):
            decision = plan.decide("A", "B", "k", "t")
            assert decision.corrupt and decision.tamper != 0

    def test_transient_crash_absorbs_then_recovers(self):
        plan = FaultPlan(seed=1, crashes=(CrashEvent("B", after_frames=1, down_for=2),))
        outcomes = [plan.absorb_frame_to("B") for _ in range(6)]
        # Frame 1 delivered; frames 2-3 lost to the outage; recovered after.
        assert outcomes == [False, True, True, False, False, False]
        assert not plan.permanently_down("B")
        assert plan.crashed_parties() == []

    def test_permanent_crash(self):
        plan = FaultPlan(seed=1, crashes=(CrashEvent("B", after_frames=0),))
        assert plan.absorb_frame_to("B") is True
        assert plan.permanently_down("B")
        assert plan.crashed_parties() == ["B"]
        assert not plan.permanently_down("A")

    def test_crashy_preset_is_reproducible(self):
        first = FaultPlan.preset("crashy", seed=9, parties=("A", "B"))
        second = FaultPlan.preset("crashy", seed=9, parties=("A", "B"))
        lane = ("A", "B", "k", "t")
        assert [first.decide(*lane) for _ in range(20)] == [
            second.decide(*lane) for _ in range(20)
        ]


# -- reliable delivery shim --------------------------------------------------


def _reliable_net(script=None, retry=None, **plan_kw):
    plan = FaultPlan(seed=1, script=script, **plan_kw)
    net = Network(fault_plan=plan, retry=retry or RetryPolicy(max_attempts=4))
    for party in ("A", "B"):
        net.add_party(party)
    net.connect("A", "B", secure=False)
    return net


class TestReliableDelivery:
    def test_corruption_detected_and_retransmitted(self):
        net = _reliable_net(script={("A", "B", "blob"): ("corrupt",)})
        net.send("A", "B", "blob", {"v": 1}, tag="t")
        assert net.receive("B", kind="blob", sender="A", tag="t").payload == {"v": 1}
        stats = net.reliability_stats()
        assert stats["corrupt_detected"] == 1 and stats["retransmits"] == 1

    def test_duplicate_suppressed_fifo_preserved(self):
        net = _reliable_net(script={("A", "B", "blob"): ("duplicate", "pass")})
        net.send("A", "B", "blob", 1, tag="t")
        net.send("A", "B", "blob", 2, tag="t")
        assert net.receive("B", kind="blob", sender="A", tag="t").payload == 1
        assert net.receive("B", kind="blob", sender="A", tag="t").payload == 2
        net.assert_drained()
        assert net.reliability_stats()["duplicates_suppressed"] == 1

    def test_drop_masked_by_retransmit(self):
        net = _reliable_net(script={("A", "B", "blob"): ("drop",)})
        net.send("A", "B", "blob", 5, tag="t")
        assert net.receive("B", kind="blob", sender="A", tag="t").payload == 5
        assert net.reliability_stats()["retransmits"] == 1

    def test_delay_delivered_after_polls(self):
        net = _reliable_net(script={("A", "B", "blob"): ("delay:2",)})
        net.send("A", "B", "blob", 5, tag="t")
        assert net.receive("B", kind="blob", sender="A", tag="t").payload == 5
        assert net.reliability_stats()["delayed_deliveries"] == 1

    def test_timeout_is_structured(self):
        net = _reliable_net(drop=1.0, fault_retransmits=True)
        net.send("A", "B", "blob", 1, tag="t")
        with pytest.raises(LaneTimeoutError) as exc:
            net.receive("B", kind="blob", sender="A", tag="t")
        error = exc.value
        assert (error.sender, error.recipient, error.kind, error.tag) == (
            "A", "B", "blob", "t"
        )
        assert error.attempts == 4
        assert isinstance(error, TimeoutError)
        assert "A->B" in str(error) and "4 attempt(s)" in str(error)

    def test_deadline_expires(self):
        net = _reliable_net(
            drop=1.0,
            fault_retransmits=True,
            retry=RetryPolicy(max_attempts=1000, deadline=0.05),
        )
        net.send("A", "B", "blob", 1, tag="t")
        with pytest.raises(LaneTimeoutError):
            net.receive("B", kind="blob", sender="A", tag="t")

    def test_legacy_network_unchanged(self):
        net = Network()
        for party in ("A", "B"):
            net.add_party(party)
        net.connect("A", "B", secure=False)
        assert not net.reliable
        net.send("A", "B", "blob", 1)
        assert net.receive("B").payload == 1
        with pytest.raises(ProtocolError):
            net.receive("B")

    def test_tag_requires_kind_and_sender(self):
        net = _reliable_net()
        with pytest.raises(ChannelError):
            net.receive("B", tag="t")

    def test_permanently_crashed_party_cannot_do_io(self):
        plan = FaultPlan(seed=2, crashes=(CrashEvent("B", after_frames=0),))
        net = Network(fault_plan=plan, retry=RetryPolicy(max_attempts=2))
        for party in ("A", "B"):
            net.add_party(party)
        net.connect("A", "B", secure=False)
        net.send("A", "B", "blob", 1, tag="t")  # absorbed; trips the crash
        with pytest.raises(PartyCrashError):
            net.receive("B", kind="blob", sender="A", tag="t")
        with pytest.raises(PartyCrashError):
            net.send("B", "A", "blob", 1)

    def test_drain_counts_discarded_frames(self):
        net = _reliable_net(script={("A", "B", "blob"): ("drop",)})
        net.send("A", "B", "blob", 1, tag="t")
        net.send("A", "B", "other", 2, tag="t2")
        assert net.drain("B") == 2
        net.assert_drained()


# -- masked faults: bit-identical results ------------------------------------


class TestMaskedFaultDeterminism:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_presets_are_masked(self, preset, clean_fingerprint):
        plan = FaultPlan.preset(preset, seed=101, parties=("A", "B", "C"))
        session = _session(fault_plan=plan)
        assert _fingerprint(session, session.run()) == clean_fingerprint
        assert session.network.reliable

    def test_same_plan_same_recovery_trace(self):
        stats = []
        for _ in range(2):
            plan = FaultPlan.preset("lossy", seed=55)
            session = _session(fault_plan=plan)
            session.run()
            stats.append(session.network.reliability_stats())
        assert stats[0] == stats[1]
        assert stats[0]["retransmits"] > 0

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        fault_seed=st.integers(min_value=0, max_value=2**32),
        schedule=st.sampled_from(["sequential", "interleaved", "parallel"]),
        workers=st.integers(min_value=1, max_value=3),
        preset=st.sampled_from(PRESETS),
    )
    def test_any_masked_schedule_any_policy(
        self, fault_seed, schedule, workers, preset, clean_fingerprint
    ):
        plan = FaultPlan.preset(preset, seed=fault_seed, parties=("A", "B", "C"))
        session = _session(schedule=schedule, fault_plan=plan, workers=workers)
        assert _fingerprint(session, session.run()) == clean_fingerprint


# -- unmaskable faults: precise degradation ----------------------------------


class TestDegradedConstruction:
    def _dead_lane_plan(self) -> FaultPlan:
        """Kill exactly the A->TP local-matrix lane, retransmits included."""
        return FaultPlan(
            seed=7,
            rules=(
                FaultRule(sender="A", recipient="TP", kind="local_matrix", drop=1.0),
            ),
            fault_retransmits=True,
        )

    @pytest.mark.parametrize("schedule", ["sequential", "parallel"])
    def test_dead_lane_loses_only_its_attributes(self, schedule):
        session = _session(schedule=schedule, fault_plan=self._dead_lane_plan(), tolerate=True)
        result = session.run()
        assert session.degraded
        report = session.degraded_report
        # Both matrix-shipping attributes route through the dead lane;
        # the categorical attribute uses encrypted columns and survives.
        assert report.failed_attributes == ("num", "dna")
        assert report.completed_attributes == ("city",)
        assert all(
            name.partition(":")[0] in ("num", "dna")
            for name, _ in report.failed_steps
        )
        assert any("LaneTimeoutError" in err for _, err in report.failed_steps)
        assert session.unreachable_sites == []
        # The published result is the real clustering of what completed.
        survivors = session.third_party.merged_matrix(attributes=["city"])
        assert session.final_matrix() == survivors
        assert result.to_payload()

    def test_intolerant_session_still_aborts(self):
        session = _session(fault_plan=self._dead_lane_plan(), tolerate=False)
        with pytest.raises(LaneTimeoutError):
            session.run()

    def test_permanent_crash_fails_every_attribute(self):
        """Every attribute has steps on every site, so a site dying
        mid-construction loses them all -- reported, not mis-clustered."""
        plan = FaultPlan(seed=7, crashes=(CrashEvent("C", after_frames=1),))
        session = _session(fault_plan=plan, tolerate=True)
        session.execute_protocol()
        assert session.degraded
        report = session.degraded_report
        assert report.completed_attributes == ()
        assert set(report.failed_attributes) == {"num", "dna", "city"}
        assert plan.crashed_parties() == ["C"]
        with pytest.raises(ProtocolError, match="no attributes selected"):
            session.third_party.merged_matrix(attributes=[])

    def test_unreachable_site_excluded_from_publication(self, clean_fingerprint):
        """A site whose weights lane dies is dropped from publication;
        the remaining holders still get the exact clean result."""
        plan = FaultPlan(
            seed=7,
            rules=(FaultRule(sender="C", recipient="TP", kind="weights", drop=1.0),),
            fault_retransmits=True,
        )
        session = _session(fault_plan=plan, tolerate=True)
        result = session.run()
        assert session.unreachable_sites == ["C"]
        assert session.degraded
        report = session.degraded_report
        assert not report.degraded  # construction itself was clean
        assert _fingerprint(session, result) == clean_fingerprint

    def test_degraded_report_summary_names_losses(self):
        session = _session(fault_plan=self._dead_lane_plan(), tolerate=True)
        session.execute_protocol()
        summary = session.degraded_report.summary()
        assert "num" in summary and "dna" in summary and "city" in summary


# -- chaos preset environment hook -------------------------------------------


class TestChaosEnvHook:
    def test_env_preset_installs_plan_and_masks(self, monkeypatch, clean_fingerprint):
        monkeypatch.setenv(CHAOS_PRESET_ENV, "lossy")
        session = _session()
        assert session.network.fault_plan is not None
        assert session.network.reliable
        assert _fingerprint(session, session.run()) == clean_fingerprint

    def test_explicit_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_PRESET_ENV, "lossy")
        plan = FaultPlan(seed=4)
        session = _session(fault_plan=plan)
        assert session.network.fault_plan is plan


# -- checkpoint / resume -----------------------------------------------------


def _arrivals():
    return {"A": DataMatrix(SCHEMA, [[9, "ACGG", "c1"]])}


class TestCheckpointResume:
    def test_restore_resumes_bit_identically(self):
        config = SessionConfig(num_clusters=2, master_seed=11)
        original = ClusteringService(config, _partitions())
        blob = original.snapshot()
        original.ingest(_arrivals())
        reference = original.matrix()
        reference_result = original.recluster()

        resumed = ClusteringService.restore(config, SCHEMA, blob)
        resumed.ingest(_arrivals())
        assert resumed.matrix() == reference
        assert resumed.recluster().to_payload() == reference_result.to_payload()
        assert resumed.epoch == original.epoch

    def test_snapshot_after_epochs_preserves_counter(self):
        config = SessionConfig(num_clusters=2, master_seed=11)
        service = ClusteringService(config, _partitions())
        service.ingest(_arrivals(), recluster=False)
        resumed = ClusteringService.restore(config, SCHEMA, service.snapshot())
        assert resumed.epoch == 1
        assert resumed.matrix() == service.matrix()

    def test_resumed_service_keeps_resuming(self):
        """Snapshot of a restored service is as good as the original's."""
        config = SessionConfig(num_clusters=2, master_seed=11)
        original = ClusteringService(config, _partitions())
        resumed = ClusteringService.restore(config, SCHEMA, original.snapshot())
        twice = ClusteringService.restore(config, SCHEMA, resumed.snapshot())
        original.ingest(_arrivals(), recluster=False)
        twice.ingest(_arrivals(), recluster=False)
        assert twice.matrix() == original.matrix()

    def test_snapshot_requires_drained_network(self):
        service = ClusteringService(SessionConfig(num_clusters=2), _partitions())
        service.session.network.send("A", "TP", "stray", 1)
        with pytest.raises(ProtocolError):
            service.snapshot()
        service.session.network.drain()
        assert service.snapshot()

    def test_restore_rejects_unknown_format(self):
        config = SessionConfig(num_clusters=2)
        blob = serialize({"format": SNAPSHOT_FORMAT + 1})
        with pytest.raises(ConfigurationError, match="snapshot"):
            ClusteringService.restore(config, SCHEMA, blob)
        with pytest.raises(ConfigurationError, match="snapshot"):
            ClusteringService.restore(config, SCHEMA, serialize([1, 2]))

    def test_restore_rejects_row_size_mismatch(self):
        config = SessionConfig(num_clusters=2)
        service = ClusteringService(config, _partitions())
        from repro.network.serialization import deserialize

        state = deserialize(service.snapshot())
        state["sites"]["A"] = 99
        with pytest.raises(ConfigurationError, match="disagree"):
            ClusteringService.restore(config, SCHEMA, serialize(state))

    def test_faulty_resume_still_masked(self, monkeypatch):
        """Checkpoint under chaos: restore + lossy re-ingest matches the
        fault-free uninterrupted history."""
        config = SessionConfig(num_clusters=2, master_seed=11)
        clean = ClusteringService(config, _partitions())
        blob = clean.snapshot()
        clean.ingest(_arrivals(), recluster=False)

        monkeypatch.setenv(CHAOS_PRESET_ENV, "lossy")
        resumed = ClusteringService.restore(config, SCHEMA, blob)
        assert resumed.session.network.reliable
        resumed.ingest(_arrivals(), recluster=False)
        assert resumed.matrix() == clean.matrix()
