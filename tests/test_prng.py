"""Unit and property tests for the re-seedable PRNGs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prng import (
    HashDRBG,
    Lcg64,
    ReseedablePRNG,
    XorShift64Star,
    available_kinds,
    make_prng,
)
from repro.exceptions import ConfigurationError

ALL_KINDS = available_kinds()


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestDeterminism:
    def test_same_seed_same_stream(self, kind):
        a = make_prng(1234, kind)
        b = make_prng(1234, kind)
        assert [a.next_uint64() for _ in range(50)] == [
            b.next_uint64() for _ in range(50)
        ]

    def test_different_seeds_differ(self, kind):
        a = make_prng(1, kind)
        b = make_prng(2, kind)
        assert [a.next_uint64() for _ in range(8)] != [
            b.next_uint64() for _ in range(8)
        ]

    def test_reset_restores_stream(self, kind):
        g = make_prng("seed", kind)
        first = [g.next_uint64() for _ in range(20)]
        g.reset()
        assert [g.next_uint64() for _ in range(20)] == first

    def test_reset_mid_buffer(self, kind):
        """Reset must discard internal buffering (HashDRBG serves 4 words
        per hash block; a stale buffer would misalign parties)."""
        g = make_prng("seed", kind)
        g.next_uint64()
        g.reset()
        h = make_prng("seed", kind)
        assert [g.next_uint64() for _ in range(9)] == [
            h.next_uint64() for _ in range(9)
        ]

    def test_draw_counter(self, kind):
        g = make_prng(7, kind)
        assert g.draws == 0
        g.next_uint64()
        g.next_bits(128)  # two words
        assert g.draws == 3
        g.reset()
        assert g.draws == 0

    def test_seed_types_accepted(self, kind):
        for seed in (0, -5, 2**200, b"bytes", "text"):
            g = make_prng(seed, kind)
            assert isinstance(g.next_uint64(), int)

    def test_seed_property(self, kind):
        assert make_prng(99, kind).seed == 99

    def test_seed_types_are_domain_separated(self, kind):
        """Regression: ``97``, ``b"a"`` and ``"a"`` share raw byte
        encodings; the type tag must still split their streams."""
        streams = {
            label: make_prng(seed, kind).next_uint64()
            for label, seed in (("int", 97), ("bytes", b"a"), ("str", "a"))
        }
        assert len(set(streams.values())) == 3

    def test_negative_seed_distinct_from_positive(self, kind):
        assert make_prng(-5, kind).next_uint64() != make_prng(5, kind).next_uint64()


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestRanges:
    def test_uint64_range(self, kind):
        g = make_prng(3, kind)
        for _ in range(200):
            v = g.next_uint64()
            assert 0 <= v < 2**64

    def test_next_bits_width(self, kind):
        g = make_prng(4, kind)
        for bits in (1, 7, 32, 63, 64, 65, 128, 500):
            v = g.next_bits(bits)
            assert 0 <= v < 2**bits

    def test_next_bits_rejects_nonpositive(self, kind):
        g = make_prng(5, kind)
        with pytest.raises(ConfigurationError):
            g.next_bits(0)
        with pytest.raises(ConfigurationError):
            g.next_bits(-1)

    def test_next_below_bounds(self, kind):
        g = make_prng(6, kind)
        for bound in (1, 2, 3, 7, 100, 2**40):
            for _ in range(20):
                assert 0 <= g.next_below(bound) < bound

    def test_next_below_rejects_nonpositive(self, kind):
        g = make_prng(7, kind)
        with pytest.raises(ConfigurationError):
            g.next_below(0)

    def test_next_below_covers_support(self, kind):
        g = make_prng(8, kind)
        seen = {g.next_below(4) for _ in range(300)}
        assert seen == {0, 1, 2, 3}

    def test_sign_bit_is_binary_and_varied(self, kind):
        g = make_prng(9, kind)
        bits = [g.next_sign_bit() for _ in range(400)]
        assert set(bits) <= {0, 1}
        # All kinds must produce both values with healthy frequency; this
        # is exactly what the raw low bit of an LCG would fail.
        assert 100 < sum(bits) < 300


class TestKindSpecifics:
    def test_lcg_low_bit_alternates(self):
        """Documents why next_bits reads top bits: the raw LCG low bit is
        a deterministic alternation."""
        g = Lcg64(42)
        low_bits = [g.next_uint64() & 1 for _ in range(16)]
        assert low_bits == [low_bits[0], 1 - low_bits[0]] * 8

    def test_kinds_are_domain_separated(self):
        streams = {
            kind: make_prng(777, kind).next_uint64() for kind in ALL_KINDS
        }
        assert len(set(streams.values())) == len(ALL_KINDS)

    def test_xorshift_nonzero_state(self):
        g = XorShift64Star(0)
        assert g.next_uint64() != 0

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_prng(1, "mersenne")

    def test_available_kinds_sorted(self):
        assert list(ALL_KINDS) == sorted(ALL_KINDS)

    def test_hash_drbg_block_boundary(self):
        """Words spanning hash-block refills stay aligned across clones."""
        a, b = HashDRBG("x"), HashDRBG("x")
        for _ in range(3):
            a.next_uint64()
            b.next_uint64()
        assert a.next_bits(256) == b.next_bits(256)

    def test_rand_bits_callable_adapter(self):
        g = make_prng(10)
        f = g.rand_bits_callable()
        assert 0 <= f(17) < 2**17


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestBlockDraws:
    """The vectorized engine's hard invariant: block draws consume the
    identical word stream as the corresponding scalar draws."""

    def test_next_words_equals_scalar_stream(self, kind):
        for count in (1, 3, 4, 5, 9, 64, 257):
            block, scalar = make_prng("w", kind), make_prng("w", kind)
            assert block.next_words(count).tolist() == [
                scalar.next_uint64() for _ in range(count)
            ]
            assert block.draws == scalar.draws == count

    def test_block_and_scalar_interleave(self, kind):
        block, scalar = make_prng(3, kind), make_prng(3, kind)
        block.next_uint64()
        scalar.next_uint64()
        assert block.next_words(7).tolist() == [
            scalar.next_uint64() for _ in range(7)
        ]
        assert block.next_uint64() == scalar.next_uint64()

    def test_sign_bits_block(self, kind):
        block, scalar = make_prng(4, kind), make_prng(4, kind)
        assert block.next_sign_bits(100).tolist() == [
            scalar.next_sign_bit() for _ in range(100)
        ]

    def test_below_block_consumes_identical_rejections(self, kind):
        for bound in (1, 2, 3, 4, 5, 26, 1000, 2**40):
            block, scalar = make_prng(bound, kind), make_prng(bound, kind)
            assert block.next_below_block(50, bound).tolist() == [
                scalar.next_below(bound) for _ in range(50)
            ]
            assert block.draws == scalar.draws
            # The word AFTER the block must line up too (exact rewind).
            assert block.next_uint64() == scalar.next_uint64()

    def test_reset_after_block(self, kind):
        g = make_prng("rb", kind)
        first = g.next_words(17)
        g.reset()
        assert g.draws == 0
        assert np.array_equal(g.next_words(17), first)

    def test_empty_blocks_touch_nothing(self, kind):
        g, h = make_prng(6, kind), make_prng(6, kind)
        g.next_words(0)
        g.next_sign_bits(0)
        g.next_below_block(0, 7)
        assert g.draws == 0
        assert g.next_uint64() == h.next_uint64()

    def test_invalid_arguments(self, kind):
        g = make_prng(7, kind)
        with pytest.raises(ConfigurationError):
            g.next_words(-1)
        with pytest.raises(ConfigurationError):
            g.next_bits_block(4, 0)
        with pytest.raises(ConfigurationError):
            g.next_below_block(4, 0)


@given(
    kind=st.sampled_from(ALL_KINDS),
    seed=st.integers(min_value=0, max_value=2**64),
    count=st.integers(0, 40),
    bits=st.integers(1, 200),
)
@settings(max_examples=60, deadline=None)
def test_property_bits_block_equals_scalar(kind, seed, count, bits):
    """Any kind, any width (incl. >64 bits): block == scalar sequence,
    with matching draw counters and reset behaviour."""
    block, scalar = make_prng(seed, kind), make_prng(seed, kind)
    values = block.next_bits_block(count, bits)
    assert values.tolist() == [scalar.next_bits(bits) for _ in range(count)]
    assert block.draws == scalar.draws
    block.reset()
    scalar.reset()
    assert block.draws == scalar.draws == 0
    assert block.next_bits(bits) == scalar.next_bits(bits)


@given(
    kind=st.sampled_from(ALL_KINDS),
    seed=st.integers(min_value=0, max_value=2**32),
    count=st.integers(0, 30),
    bound=st.integers(1, 2**70),
)
@settings(max_examples=60, deadline=None)
def test_property_below_block_equals_scalar(kind, seed, count, bound):
    block, scalar = make_prng(seed, kind), make_prng(seed, kind)
    values = block.next_below_block(count, bound)
    assert list(values) == [scalar.next_below(bound) for _ in range(count)]
    assert block.draws == scalar.draws


@given(seed=st.integers(min_value=0, max_value=2**64), bits=st.integers(1, 200))
@settings(max_examples=50, deadline=None)
def test_property_reset_alignment(seed, bits):
    """For any seed and width, two instances and a reset instance agree."""
    a = make_prng(seed)
    b = make_prng(seed)
    first = a.next_bits(bits)
    assert first == b.next_bits(bits)
    a.reset()
    assert a.next_bits(bits) == first


@given(seed=st.integers(min_value=0, max_value=2**32), bound=st.integers(1, 10**9))
@settings(max_examples=50, deadline=None)
def test_property_next_below_in_range(seed, bound):
    g = make_prng(seed, "xorshift64star")
    assert 0 <= g.next_below(bound) < bound


def test_uniformity_chi_square():
    """Coarse uniformity of the DRBG: chi-square over 16 bins.

    This is the statistical backbone of the masking argument: masked
    values must look uniform to parties without the seed.
    """
    from scipy.stats import chisquare

    g = HashDRBG("uniformity")
    bins = [0] * 16
    for _ in range(8000):
        bins[g.next_below(16)] += 1
    _stat, p_value = chisquare(bins)
    assert p_value > 0.001
