"""Tests for hierarchical clustering, dendrograms, k-medoids and quality.

The linkage implementation is cross-validated against
``scipy.cluster.hierarchy`` on random non-degenerate inputs for every
supported method.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.kmedoids import k_medoids
from repro.clustering.linkage import agglomerative
from repro.clustering.quality import (
    adjusted_rand_index,
    average_square_distance,
    purity,
    rand_index,
    silhouette_score,
)
from repro.data.synthetic import gaussian_clusters, ring_clusters
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ClusteringError
from repro.types import LinkageMethod

METHODS = list(LinkageMethod)


def _random_matrix(n: int, seed: int) -> DissimilarityMatrix:
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 3))
    square = np.linalg.norm(points[:, None] - points[None, :], axis=2)
    return DissimilarityMatrix.from_square(square)


class TestAgainstScipy:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_merge_heights_match(self, method, seed):
        matrix = _random_matrix(12, seed)
        ours = agglomerative(matrix, method)
        theirs = scipy_linkage(matrix.to_scipy_condensed(), method=method.value)
        assert np.allclose(
            sorted(ours.heights), sorted(theirs[:, 2]), rtol=1e-8
        ), method

    @pytest.mark.parametrize("method", METHODS)
    def test_flat_cuts_match(self, method):
        matrix = _random_matrix(15, 7)
        ours = agglomerative(matrix, method)
        theirs = scipy_linkage(matrix.to_scipy_condensed(), method=method.value)
        for k in (2, 3, 5):
            our_labels = ours.cut_at_k(k)
            their_labels = fcluster(theirs, k, criterion="maxclust")
            assert adjusted_rand_index(our_labels, list(their_labels)) == 1.0

    @pytest.mark.parametrize("method", METHODS)
    def test_linkage_matrix_shape(self, method):
        matrix = _random_matrix(8, 3)
        dendrogram = agglomerative(matrix, method)
        array = dendrogram.to_scipy_linkage()
        assert array.shape == (7, 4)
        assert array[-1, 3] == 8  # final merge contains all leaves


class TestAgglomerative:
    def test_string_method_names(self):
        matrix = _random_matrix(6, 1)
        assert agglomerative(matrix, "single").num_leaves == 6

    def test_unknown_method_rejected(self):
        with pytest.raises(ClusteringError):
            agglomerative(_random_matrix(4, 1), "centroid")

    @pytest.mark.parametrize("method", METHODS)
    def test_monotone_heights(self, method):
        dendrogram = agglomerative(_random_matrix(20, 9), method)
        assert dendrogram.is_monotone()

    def test_single_object(self):
        d = agglomerative(DissimilarityMatrix.zeros(1), "single")
        assert d.num_leaves == 1 and d.merges == ()

    def test_two_objects(self):
        matrix = DissimilarityMatrix.zeros(2)
        matrix[1, 0] = 3.0
        d = agglomerative(matrix, "complete")
        assert d.merges[0].height == 3.0

    def test_deterministic(self):
        a = agglomerative(_random_matrix(10, 5), "average")
        b = agglomerative(_random_matrix(10, 5), "average")
        assert a.to_scipy_linkage().tolist() == b.to_scipy_linkage().tolist()

    def test_single_linkage_chains(self):
        """Single linkage merges along the chain; complete resists it."""
        square = np.zeros((4, 4))
        positions = [0.0, 1.0, 2.0, 10.0]
        for i in range(4):
            for j in range(4):
                square[i, j] = abs(positions[i] - positions[j])
        matrix = DissimilarityMatrix.from_square(square)
        single = agglomerative(matrix, "single").cut_at_k(2)
        assert single[0] == single[1] == single[2] != single[3]

    @given(seed=st.integers(0, 1000), n=st.integers(3, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_cut_sizes(self, seed, n):
        dendrogram = agglomerative(_random_matrix(n, seed), "average")
        for k in range(1, n + 1):
            labels = dendrogram.cut_at_k(k)
            assert len(set(labels)) == k
            assert len(labels) == n


class TestDendrogram:
    def _tree(self):
        # 3 leaves: (0, 1) at h=1, then (+2) at h=2.
        return Dendrogram(
            3, [Merge(0, 1, 1.0, 2), Merge(3, 2, 2.0, 3)]
        )

    def test_cut_at_k(self):
        tree = self._tree()
        assert tree.cut_at_k(3) == [0, 1, 2]
        assert tree.cut_at_k(2) == [0, 0, 1]
        assert tree.cut_at_k(1) == [0, 0, 0]

    def test_cut_at_height(self):
        tree = self._tree()
        assert tree.cut_at_height(0.5) == [0, 1, 2]
        assert tree.cut_at_height(1.5) == [0, 0, 1]
        assert tree.cut_at_height(2.5) == [0, 0, 0]

    def test_cut_bounds(self):
        with pytest.raises(ClusteringError):
            self._tree().cut_at_k(0)
        with pytest.raises(ClusteringError):
            self._tree().cut_at_k(4)

    def test_cophenetic(self):
        coph = self._tree().cophenetic_matrix()
        assert coph[0, 1] == 1.0
        assert coph[0, 2] == coph[1, 2] == 2.0
        assert np.all(np.diag(coph) == 0)

    def test_cophenetic_ultrametric_property(self):
        dendrogram = agglomerative(_random_matrix(10, 11), "complete")
        coph = dendrogram.cophenetic_matrix()
        n = coph.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert coph[i, j] <= max(coph[i, k], coph[k, j]) + 1e-9

    def test_invalid_merge_counts(self):
        with pytest.raises(ClusteringError):
            Dendrogram(3, [Merge(0, 1, 1.0, 2)])

    def test_invalid_node_ids(self):
        with pytest.raises(ClusteringError):
            Dendrogram(2, [Merge(0, 5, 1.0, 2)])
        with pytest.raises(ClusteringError):
            Dendrogram(2, [Merge(0, 0, 1.0, 2)])


def _parse_newick_leaves(text: str) -> list[str]:
    """Minimal Newick tokenizer: the leaf labels, in tree order.

    Handles quoted labels with doubled-quote escapes per the spec --
    enough to round-trip what :meth:`Dendrogram.to_newick` emits.
    """
    assert text.endswith(";")
    leaves: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "'":
            label = []
            i += 1
            while True:
                if text[i] == "'":
                    if i + 1 < len(text) and text[i + 1] == "'":
                        label.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                label.append(text[i])
                i += 1
            leaves.append("".join(label))
        elif ch in "(),;":
            i += 1
        elif ch == ":":
            i += 1
            while i < len(text) and text[i] not in "(),;:":
                i += 1
        else:
            label = []
            while text[i] not in "(),;:":
                label.append(text[i])
                i += 1
            leaves.append("".join(label))
    return leaves


class TestNewickEscaping:
    def _tree(self):
        return Dendrogram(3, [Merge(0, 1, 1.0, 2), Merge(3, 2, 2.0, 3)])

    def test_safe_labels_stay_unquoted(self):
        assert self._tree().to_newick(["a", "b", "c"]) == "((a:1,b:1):1,c:2);"

    @pytest.mark.parametrize(
        "hostile",
        [
            ["a,b", "c(d", "e)f"],
            ["x:y", "z;w", "it's"],
            ["two words", "tab\there", "under_score"],
            ["'quoted'", "''", ""],
            ["[bracket]", "{brace}", 'quo"te'],
        ],
    )
    def test_hostile_labels_round_trip(self, hostile):
        newick = self._tree().to_newick(hostile)
        assert _parse_newick_leaves(newick) == [hostile[0], hostile[1], hostile[2]]

    def test_hostile_label_single_leaf(self):
        assert _parse_newick_leaves(Dendrogram(1, []).to_newick(["a:b,c"])) == ["a:b,c"]

    def test_structure_survives_hostile_labels(self):
        """Metacharacters in labels must not change the token structure."""
        newick = self._tree().to_newick(["a,b", "c", "d"])
        stripped = []
        in_quote = False
        i = 0
        while i < len(newick):
            ch = newick[i]
            if in_quote:
                if ch == "'":
                    if i + 1 < len(newick) and newick[i + 1] == "'":
                        i += 2
                        continue
                    in_quote = False
                i += 1
                continue
            if ch == "'":
                in_quote = True
            else:
                stripped.append(ch)
            i += 1
        assert "".join(stripped).count(",") == 2


class TestCutAtHeightInversions:
    def _inverted(self):
        # Node 4 = (0, 1) at height 2.0; node 5 = (2, 3) at height 0.5;
        # root joins them at height 1.0 -- an inversion (2.0 before 1.0).
        return Dendrogram(
            4,
            [
                Merge(0, 1, 2.0, 2),
                Merge(2, 3, 0.5, 2),
                Merge(4, 5, 1.0, 4),
            ],
        )

    def test_qualifying_merges_not_prefix(self):
        """Two merges qualify at h=1.0, but they are NOT the first two;
        the old prefix logic applied {(0,1), (2,3)} and returned
        [0, 0, 1, 1] while claiming a cut at 1.0."""
        tree = self._inverted()
        # The root (height 1.0) qualifies; its closure pulls in (0,1), so
        # everything connects -- exactly the components of the
        # cophenetic-threshold graph at 1.0 (coph(0,2)=1.0 bridges all).
        assert tree.cut_at_height(1.0) == [0, 0, 0, 0]

    def test_below_all_inverted_heights(self):
        assert self._inverted().cut_at_height(0.4) == [0, 1, 2, 3]

    def test_only_low_merge_qualifies(self):
        assert self._inverted().cut_at_height(0.7) == [0, 1, 2, 2]

    def test_matches_cophenetic_components(self):
        """Cut-at-height == connected components of coph <= h, for every
        interesting threshold of an inverted tree."""
        tree = self._inverted()
        coph = tree.cophenetic_matrix()
        n = tree.num_leaves
        for h in (0.4, 0.5, 0.7, 1.0, 1.5, 2.0, 2.5):
            labels = tree.cut_at_height(h)
            # Transitive closure of the threshold graph via repeated
            # boolean matrix powers (tiny n).
            adj = (coph <= h) | np.eye(n, dtype=bool)
            for _ in range(n):
                adj = adj | (adj @ adj)
            for i in range(n):
                for j in range(n):
                    assert (labels[i] == labels[j]) == bool(adj[i, j]), (h, i, j)

    def test_monotone_trees_unchanged(self):
        matrix = _random_matrix(18, 3)
        tree = agglomerative(matrix, "average")
        for h in np.linspace(0, max(tree.heights) * 1.1, 12):
            expected = tree._labels_after(
                sum(1 for m in tree.merges if m.height <= h)
            )
            assert tree.cut_at_height(float(h)) == expected


class TestKMedoids:
    def test_recovers_separated_clusters(self):
        rows, truth = gaussian_clusters([10, 10, 10], dim=2, separation=12.0, seed=3)
        data = np.asarray(rows)
        square = np.linalg.norm(data[:, None] - data[None, :], axis=2)
        matrix = DissimilarityMatrix.from_square(square)
        result = k_medoids(matrix, 3)
        assert adjusted_rand_index(truth, result.labels) == 1.0
        assert result.converged

    def test_fails_on_rings_where_single_linkage_succeeds(self):
        """The Section 2 argument: partitioning methods produce spherical
        clusters and split the rings; single linkage recovers them."""
        rows, truth = ring_clusters([40, 40], seed=4)
        data = np.asarray(rows)
        square = np.linalg.norm(data[:, None] - data[None, :], axis=2)
        matrix = DissimilarityMatrix.from_square(square)

        pam = k_medoids(matrix, 2)
        hier = agglomerative(matrix, "single").cut_at_k(2)
        assert adjusted_rand_index(truth, hier) == 1.0
        assert adjusted_rand_index(truth, pam.labels) < 0.5

    def test_medoids_are_members(self):
        matrix = _random_matrix(12, 5)
        result = k_medoids(matrix, 3)
        assert len(result.medoids) == 3
        assert all(0 <= m < 12 for m in result.medoids)

    def test_k_validation(self):
        with pytest.raises(ClusteringError):
            k_medoids(_random_matrix(5, 1), 0)
        with pytest.raises(ClusteringError):
            k_medoids(_random_matrix(5, 1), 6)

    def test_k_equals_n(self):
        result = k_medoids(_random_matrix(4, 2), 4)
        assert sorted(result.labels) == [0, 1, 2, 3]
        assert result.cost == 0.0

    def test_deterministic(self):
        a = k_medoids(_random_matrix(10, 7), 2)
        b = k_medoids(_random_matrix(10, 7), 2)
        assert a.labels == b.labels


class TestQuality:
    def _two_blobs(self):
        square = np.array(
            [
                [0, 1, 9, 9],
                [1, 0, 9, 9],
                [9, 9, 0, 1],
                [9, 9, 1, 0],
            ],
            dtype=float,
        )
        return DissimilarityMatrix.from_square(square)

    def test_silhouette_good_vs_bad(self):
        matrix = self._two_blobs()
        good = silhouette_score(matrix, [0, 0, 1, 1])
        bad = silhouette_score(matrix, [0, 1, 0, 1])
        assert good > 0.8 > bad

    def test_silhouette_requires_two_clusters(self):
        with pytest.raises(ClusteringError):
            silhouette_score(self._two_blobs(), [0, 0, 0, 0])

    def test_average_square_distance(self):
        stats = average_square_distance(self._two_blobs(), [0, 0, 1, 1])
        assert stats == {0: 1.0, 1: 1.0}

    def test_average_square_distance_singleton(self):
        stats = average_square_distance(self._two_blobs(), [0, 1, 1, 1])
        assert stats[0] == 0.0

    def test_rand_index_identity(self):
        assert rand_index([0, 0, 1], [1, 1, 0]) == 1.0  # label-invariant
        assert rand_index([0, 1, 2], [0, 0, 0]) == 0.0

    def test_adjusted_rand_identity_and_chance(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0
        assert adjusted_rand_index([0, 0, 1, 1], [0, 1, 0, 1]) < 0.1

    def test_purity(self):
        assert purity([0, 0, 1, 1], [0, 0, 1, 1]) == 1.0
        assert purity([0, 1, 0, 1], [0, 0, 1, 1]) == 0.5

    def test_label_length_mismatch(self):
        with pytest.raises(ClusteringError):
            rand_index([0], [0, 1])
        with pytest.raises(ClusteringError):
            silhouette_score(self._two_blobs(), [0, 1])
