"""Tests for hierarchical clustering, dendrograms, k-medoids and quality.

The linkage implementation is cross-validated against
``scipy.cluster.hierarchy`` on random non-degenerate inputs for every
supported method.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.kmedoids import k_medoids
from repro.clustering.linkage import agglomerative
from repro.clustering.quality import (
    adjusted_rand_index,
    average_square_distance,
    purity,
    rand_index,
    silhouette_score,
)
from repro.data.synthetic import gaussian_clusters, ring_clusters
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ClusteringError
from repro.types import LinkageMethod

METHODS = list(LinkageMethod)


def _random_matrix(n: int, seed: int) -> DissimilarityMatrix:
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 3))
    square = np.linalg.norm(points[:, None] - points[None, :], axis=2)
    return DissimilarityMatrix.from_square(square)


class TestAgainstScipy:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_merge_heights_match(self, method, seed):
        matrix = _random_matrix(12, seed)
        ours = agglomerative(matrix, method)
        theirs = scipy_linkage(matrix.to_scipy_condensed(), method=method.value)
        assert np.allclose(
            sorted(ours.heights), sorted(theirs[:, 2]), rtol=1e-8
        ), method

    @pytest.mark.parametrize("method", METHODS)
    def test_flat_cuts_match(self, method):
        matrix = _random_matrix(15, 7)
        ours = agglomerative(matrix, method)
        theirs = scipy_linkage(matrix.to_scipy_condensed(), method=method.value)
        for k in (2, 3, 5):
            our_labels = ours.cut_at_k(k)
            their_labels = fcluster(theirs, k, criterion="maxclust")
            assert adjusted_rand_index(our_labels, list(their_labels)) == 1.0

    @pytest.mark.parametrize("method", METHODS)
    def test_linkage_matrix_shape(self, method):
        matrix = _random_matrix(8, 3)
        dendrogram = agglomerative(matrix, method)
        array = dendrogram.to_scipy_linkage()
        assert array.shape == (7, 4)
        assert array[-1, 3] == 8  # final merge contains all leaves


class TestAgglomerative:
    def test_string_method_names(self):
        matrix = _random_matrix(6, 1)
        assert agglomerative(matrix, "single").num_leaves == 6

    def test_unknown_method_rejected(self):
        with pytest.raises(ClusteringError):
            agglomerative(_random_matrix(4, 1), "centroid")

    @pytest.mark.parametrize("method", METHODS)
    def test_monotone_heights(self, method):
        dendrogram = agglomerative(_random_matrix(20, 9), method)
        assert dendrogram.is_monotone()

    def test_single_object(self):
        d = agglomerative(DissimilarityMatrix.zeros(1), "single")
        assert d.num_leaves == 1 and d.merges == ()

    def test_two_objects(self):
        matrix = DissimilarityMatrix.zeros(2)
        matrix[1, 0] = 3.0
        d = agglomerative(matrix, "complete")
        assert d.merges[0].height == 3.0

    def test_deterministic(self):
        a = agglomerative(_random_matrix(10, 5), "average")
        b = agglomerative(_random_matrix(10, 5), "average")
        assert a.to_scipy_linkage().tolist() == b.to_scipy_linkage().tolist()

    def test_single_linkage_chains(self):
        """Single linkage merges along the chain; complete resists it."""
        square = np.zeros((4, 4))
        positions = [0.0, 1.0, 2.0, 10.0]
        for i in range(4):
            for j in range(4):
                square[i, j] = abs(positions[i] - positions[j])
        matrix = DissimilarityMatrix.from_square(square)
        single = agglomerative(matrix, "single").cut_at_k(2)
        assert single[0] == single[1] == single[2] != single[3]

    @given(seed=st.integers(0, 1000), n=st.integers(3, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_cut_sizes(self, seed, n):
        dendrogram = agglomerative(_random_matrix(n, seed), "average")
        for k in range(1, n + 1):
            labels = dendrogram.cut_at_k(k)
            assert len(set(labels)) == k
            assert len(labels) == n


class TestDendrogram:
    def _tree(self):
        # 3 leaves: (0, 1) at h=1, then (+2) at h=2.
        return Dendrogram(
            3, [Merge(0, 1, 1.0, 2), Merge(3, 2, 2.0, 3)]
        )

    def test_cut_at_k(self):
        tree = self._tree()
        assert tree.cut_at_k(3) == [0, 1, 2]
        assert tree.cut_at_k(2) == [0, 0, 1]
        assert tree.cut_at_k(1) == [0, 0, 0]

    def test_cut_at_height(self):
        tree = self._tree()
        assert tree.cut_at_height(0.5) == [0, 1, 2]
        assert tree.cut_at_height(1.5) == [0, 0, 1]
        assert tree.cut_at_height(2.5) == [0, 0, 0]

    def test_cut_bounds(self):
        with pytest.raises(ClusteringError):
            self._tree().cut_at_k(0)
        with pytest.raises(ClusteringError):
            self._tree().cut_at_k(4)

    def test_cophenetic(self):
        coph = self._tree().cophenetic_matrix()
        assert coph[0, 1] == 1.0
        assert coph[0, 2] == coph[1, 2] == 2.0
        assert np.all(np.diag(coph) == 0)

    def test_cophenetic_ultrametric_property(self):
        dendrogram = agglomerative(_random_matrix(10, 11), "complete")
        coph = dendrogram.cophenetic_matrix()
        n = coph.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert coph[i, j] <= max(coph[i, k], coph[k, j]) + 1e-9

    def test_invalid_merge_counts(self):
        with pytest.raises(ClusteringError):
            Dendrogram(3, [Merge(0, 1, 1.0, 2)])

    def test_invalid_node_ids(self):
        with pytest.raises(ClusteringError):
            Dendrogram(2, [Merge(0, 5, 1.0, 2)])
        with pytest.raises(ClusteringError):
            Dendrogram(2, [Merge(0, 0, 1.0, 2)])


class TestKMedoids:
    def test_recovers_separated_clusters(self):
        rows, truth = gaussian_clusters([10, 10, 10], dim=2, separation=12.0, seed=3)
        data = np.asarray(rows)
        square = np.linalg.norm(data[:, None] - data[None, :], axis=2)
        matrix = DissimilarityMatrix.from_square(square)
        result = k_medoids(matrix, 3)
        assert adjusted_rand_index(truth, result.labels) == 1.0
        assert result.converged

    def test_fails_on_rings_where_single_linkage_succeeds(self):
        """The Section 2 argument: partitioning methods produce spherical
        clusters and split the rings; single linkage recovers them."""
        rows, truth = ring_clusters([40, 40], seed=4)
        data = np.asarray(rows)
        square = np.linalg.norm(data[:, None] - data[None, :], axis=2)
        matrix = DissimilarityMatrix.from_square(square)

        pam = k_medoids(matrix, 2)
        hier = agglomerative(matrix, "single").cut_at_k(2)
        assert adjusted_rand_index(truth, hier) == 1.0
        assert adjusted_rand_index(truth, pam.labels) < 0.5

    def test_medoids_are_members(self):
        matrix = _random_matrix(12, 5)
        result = k_medoids(matrix, 3)
        assert len(result.medoids) == 3
        assert all(0 <= m < 12 for m in result.medoids)

    def test_k_validation(self):
        with pytest.raises(ClusteringError):
            k_medoids(_random_matrix(5, 1), 0)
        with pytest.raises(ClusteringError):
            k_medoids(_random_matrix(5, 1), 6)

    def test_k_equals_n(self):
        result = k_medoids(_random_matrix(4, 2), 4)
        assert sorted(result.labels) == [0, 1, 2, 3]
        assert result.cost == 0.0

    def test_deterministic(self):
        a = k_medoids(_random_matrix(10, 7), 2)
        b = k_medoids(_random_matrix(10, 7), 2)
        assert a.labels == b.labels


class TestQuality:
    def _two_blobs(self):
        square = np.array(
            [
                [0, 1, 9, 9],
                [1, 0, 9, 9],
                [9, 9, 0, 1],
                [9, 9, 1, 0],
            ],
            dtype=float,
        )
        return DissimilarityMatrix.from_square(square)

    def test_silhouette_good_vs_bad(self):
        matrix = self._two_blobs()
        good = silhouette_score(matrix, [0, 0, 1, 1])
        bad = silhouette_score(matrix, [0, 1, 0, 1])
        assert good > 0.8 > bad

    def test_silhouette_requires_two_clusters(self):
        with pytest.raises(ClusteringError):
            silhouette_score(self._two_blobs(), [0, 0, 0, 0])

    def test_average_square_distance(self):
        stats = average_square_distance(self._two_blobs(), [0, 0, 1, 1])
        assert stats == {0: 1.0, 1: 1.0}

    def test_average_square_distance_singleton(self):
        stats = average_square_distance(self._two_blobs(), [0, 1, 1, 1])
        assert stats[0] == 0.0

    def test_rand_index_identity(self):
        assert rand_index([0, 0, 1], [1, 1, 0]) == 1.0  # label-invariant
        assert rand_index([0, 1, 2], [0, 0, 0]) == 0.0

    def test_adjusted_rand_identity_and_chance(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0
        assert adjusted_rand_index([0, 0, 1, 1], [0, 1, 0, 1]) < 0.1

    def test_purity(self):
        assert purity([0, 0, 1, 1], [0, 0, 1, 1]) == 1.0
        assert purity([0, 1, 0, 1], [0, 0, 1, 1]) == 0.5

    def test_label_length_mismatch(self):
        with pytest.raises(ClusteringError):
            rand_index([0], [0, 1])
        with pytest.raises(ClusteringError):
            silhouette_score(self._two_blobs(), [0, 1])
