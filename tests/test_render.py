"""Tests for the text dendrogram renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.linkage import agglomerative
from repro.clustering.render import render_dendrogram
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ClusteringError


def _two_blob_dendrogram():
    rng = np.random.default_rng(4)
    points = np.concatenate(
        [rng.normal(0, 0.3, (3, 2)), rng.normal(6, 0.3, (3, 2))]
    )
    square = np.linalg.norm(points[:, None] - points[None, :], axis=2)
    return agglomerative(DissimilarityMatrix.from_square(square), "average")


class TestRenderDendrogram:
    def test_one_line_per_leaf_plus_scale(self):
        dendrogram = _two_blob_dendrogram()
        text = render_dendrogram(dendrogram, width=40)
        lines = text.splitlines()
        assert len(lines) == dendrogram.num_leaves + 1  # + scale row

    def test_labels_appear(self):
        dendrogram = _two_blob_dendrogram()
        labels = [f"obj{i}" for i in range(6)]
        text = render_dendrogram(dendrogram, labels, width=40)
        for label in labels:
            assert label in text

    def test_blob_members_adjacent(self):
        """Leaf ordering follows the tree, so blob members group."""
        dendrogram = _two_blob_dendrogram()
        labels = ["a0", "a1", "a2", "b0", "b1", "b2"]
        text = render_dendrogram(dendrogram, labels, width=40)
        order = [
            line.split()[0] for line in text.splitlines()[:-1]
        ]
        first_group = {l[0] for l in order[:3]}
        assert first_group in ({"a"}, {"b"})

    def test_root_column_shared(self):
        """Every leaf's bar ends at the root merge column."""
        dendrogram = _two_blob_dendrogram()
        text = render_dendrogram(dendrogram, width=40)
        leaf_lines = text.splitlines()[:-1]
        root_positions = {line.rstrip().rfind("┤") for line in leaf_lines}
        assert len(root_positions) == 1

    def test_single_leaf(self):
        assert render_dendrogram(Dendrogram(1, []), ["only"]) == "only"

    def test_label_count_validated(self):
        dendrogram = _two_blob_dendrogram()
        with pytest.raises(ClusteringError):
            render_dendrogram(dendrogram, ["too", "few"])

    def test_width_validated(self):
        dendrogram = _two_blob_dendrogram()
        with pytest.raises(ClusteringError):
            render_dendrogram(dendrogram, width=5)

    def test_zero_height_tree(self):
        flat = DissimilarityMatrix.zeros(3)
        dendrogram = agglomerative(flat, "single")
        text = render_dendrogram(dendrogram, width=20)
        assert len(text.splitlines()) == 4
