"""The pipelined construction scheduler and the session batch runner.

Pins the scheduler's two core guarantees -- (1) the ``sequential``
policy replays the seed's exact choreography, and (2) the
``interleaved`` policy overlaps attributes and holder pairs while
changing no protocol message, no byte count and no result -- plus the
queue-gating that makes arbitrary admissible interleavings safe, and
the :class:`repro.apps.sessions.SessionBatch` setup amortisation.
"""

from __future__ import annotations

import threading

import pytest

from repro.apps.sessions import SessionBatch
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.scheduler import (
    SCHEDULE_POLICIES,
    ConstructionOutcome,
    ConstructionScheduler,
    Step,
    _ParallelRun,
)
from repro.core.session import ClusteringSession
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.exceptions import (
    ConfigurationError,
    LaneTimeoutError,
    PartyCrashError,
    ProtocolError,
    SchedulerStallError,
)
from repro.network.channel import Eavesdropper
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("num", AttributeType.NUMERIC, precision=0),
    AttributeSpec("seq", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    AttributeSpec("cat", AttributeType.CATEGORICAL),
]


def _partitions(num_sites: int = 3):
    rows = [[i, "ACGT" if i % 2 else "TTGT", f"c{i % 3}"] for i in range(num_sites * 2)]
    return {
        chr(ord("A") + s): DataMatrix(SCHEMA, rows[2 * s : 2 * s + 2])
        for s in range(num_sites)
    }


def _tapped_session(schedule: str, secure: bool = False, num_sites: int = 3):
    suite = ProtocolSuiteConfig(
        secure_channels=secure, construction_schedule=schedule
    )
    partitions = _partitions(num_sites)
    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=3, suite=suite), partitions
    )
    taps = {}
    names = sorted(partitions) + ["TP"]
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            tap = Eavesdropper(f"{a}|{b}")
            session.network.attach_tap(a, b, tap)
            taps[(a, b)] = tap
    return session, taps


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolSuiteConfig(construction_schedule="chaotic")

    def test_scheduler_rejects_unknown_policy(self):
        session, _ = _tapped_session("sequential")
        with pytest.raises(ConfigurationError):
            ConstructionScheduler(session.holders, session.third_party, policy="nope")

    def test_policies_registry(self):
        assert set(SCHEDULE_POLICIES) == {"sequential", "interleaved", "parallel"}

    def test_scheduler_rejects_bad_worker_count(self):
        session, _ = _tapped_session("sequential")
        with pytest.raises(ConfigurationError):
            ConstructionScheduler(
                session.holders, session.third_party, policy="parallel", max_workers=0
            )
        with pytest.raises(ConfigurationError):
            SessionConfig(num_clusters=2, max_workers=0)

    def test_holder_site_mismatch_rejected(self):
        session, _ = _tapped_session("sequential")
        holders = dict(session.holders)
        holders.pop(next(iter(holders)))
        with pytest.raises(ProtocolError):
            ConstructionScheduler(holders, session.third_party)


class TestSequentialReplaysSeed:
    def test_global_frame_order_is_seed_order(self):
        """The sequential schedule reproduces the seed's who-sends-what-when
        (the same choreography test_transcript pins in detail)."""
        suite = ProtocolSuiteConfig(secure_channels=False)
        partitions = _partitions(2)
        session = ClusteringSession(
            SessionConfig(num_clusters=2, master_seed=3, suite=suite), partitions
        )
        shared = Eavesdropper("global")
        names = sorted(partitions) + ["TP"]
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                session.network.attach_tap(a, b, shared)
        session.run()
        kinds = [f.kind for f in shared.frames]
        assert kinds == [
            "group_key",
            "local_matrix", "local_matrix", "masked_vector", "comparison_matrix",
            "local_matrix", "local_matrix", "masked_strings", "ccm_matrices",
            "encrypted_column", "encrypted_column",
            "weights", "weights",
            "result", "result",
        ]


class TestInterleavedEquivalence:
    def test_results_and_stats_match_sequential(self):
        seq_session, seq_taps = _tapped_session("sequential", secure=True)
        seq_result = seq_session.run()
        int_session, int_taps = _tapped_session("interleaved", secure=True)
        int_result = int_session.run()

        assert seq_result.to_payload() == int_result.to_payload()
        assert (
            seq_session.final_matrix().condensed.tolist()
            == int_session.final_matrix().condensed.tolist()
        )
        assert seq_session.total_bytes() == int_session.total_bytes()
        for link in seq_taps:
            a, b = link
            seq_channel = seq_session.network.channel(a, b)
            int_channel = int_session.network.channel(a, b)
            for x, y in ((a, b), (b, a)):
                assert seq_channel.stats(x, y) == int_channel.stats(x, y)

    def test_insecure_frames_identical_up_to_order(self):
        """Without sealing, frames are raw payload bytes: reordering is
        the *only* difference the scheduler may introduce."""
        seq_session, seq_taps = _tapped_session("sequential", secure=False)
        seq_session.run()
        int_session, int_taps = _tapped_session("interleaved", secure=False)
        int_session.run()
        for link in seq_taps:
            seq_frames = sorted(
                (f.sender, f.recipient, f.kind, f.wire) for f in seq_taps[link].frames
            )
            int_frames = sorted(
                (f.sender, f.recipient, f.kind, f.wire) for f in int_taps[link].frames
            )
            assert seq_frames == int_frames, f"payload bytes changed on {link}"

    def test_trace_overlaps_pairs_and_attributes(self):
        session, _ = _tapped_session("interleaved")
        session.run()
        trace = session.construction_trace
        # Protocol rounds overlap: several initiates are in flight before
        # the TP absorbs the first comparison block.
        first_block = next(i for i, name in enumerate(trace) if ":recv_block" in name)
        assert sum(1 for name in trace[:first_block] if ":initiate" in name) >= 3
        # Attributes overlap: the second attribute starts before the
        # first finalizes.
        num_finalize = trace.index("num:finalize")
        assert any(name.startswith("seq:") for name in trace[:num_finalize])

    def test_sequential_trace_is_attribute_major(self):
        session, _ = _tapped_session("sequential")
        session.run()
        trace = session.construction_trace
        num_steps = [i for i, name in enumerate(trace) if name.startswith("num:")]
        seq_steps = [i for i, name in enumerate(trace) if name.startswith("seq:")]
        assert max(num_steps) < min(seq_steps)


class TestQueueGating:
    def test_deadlock_reported_not_misdelivered(self):
        """A step graph whose receive can never be satisfied fails loudly."""
        session, _ = _tapped_session("sequential")
        scheduler = ConstructionScheduler(session.holders, session.third_party)
        scheduler._steps.append(
            Step(
                name="ghost",
                run=lambda: None,
                receives=("TP", "never_sent", "A"),
                order=(0,),
            )
        )
        with pytest.raises(ProtocolError, match="deadlock"):
            scheduler.run()

    def test_duplicate_step_rejected(self):
        session, _ = _tapped_session("sequential")
        scheduler = ConstructionScheduler(session.holders, session.third_party)
        scheduler.add_attribute(SCHEMA[0])
        with pytest.raises(ProtocolError, match="duplicate"):
            scheduler.add_attribute(SCHEMA[0])

    def test_network_peek(self):
        session, _ = _tapped_session("sequential")
        network = session.network
        assert network.peek("TP") is None
        network.send("A", "TP", "probe", 1)
        head = network.peek("TP")
        assert head is not None and head.kind == "probe"
        assert network.pending("TP") == 1  # peek does not pop
        network.receive("TP")


class TestSessionBatch:
    def test_transcripts_byte_identical_to_standalone(self):
        partitions = _partitions()
        config = SessionConfig(num_clusters=2, master_seed=3)
        standalone = ClusteringSession(config, partitions)
        shared_standalone = Eavesdropper("s")
        names = sorted(partitions) + ["TP"]
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                standalone.network.attach_tap(a, b, shared_standalone)
        standalone_result = standalone.run()

        batch = SessionBatch(config, sorted(partitions))
        batched = batch.session(partitions)
        shared_batched = Eavesdropper("b")
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                batched.network.attach_tap(a, b, shared_batched)
        batched_result = batched.run()

        assert standalone_result.to_payload() == batched_result.to_payload()
        assert [f.wire for f in shared_standalone.frames] == [
            f.wire for f in shared_batched.frames
        ]

    def test_run_many(self):
        batch = SessionBatch(SessionConfig(num_clusters=2, master_seed=9), ["A", "B", "C"])
        results = batch.run_many([_partitions(), _partitions()])
        assert len(results) == 2
        assert results[0].to_payload() == results[1].to_payload()

    def test_run_many_parallel_matches_run_many(self):
        """Concurrent whole-session serving returns bit-identical results
        in input order, for any worker count."""
        batch = SessionBatch(SessionConfig(num_clusters=2, master_seed=9), ["A", "B", "C"])
        datasets = []
        for shift in range(4):
            rows = [
                [100 if i == shift else i, "ACGT" if (i + shift) % 2 else "TTGT",
                 f"c{(i + shift) % 3}"]
                for i in range(6)
            ]
            datasets.append(
                {
                    chr(ord("A") + s): DataMatrix(SCHEMA, rows[2 * s : 2 * s + 2])
                    for s in range(3)
                }
            )
        reference = [r.to_payload() for r in batch.run_many(datasets)]
        assert len({str(p) for p in reference}) > 1, "datasets should differ"
        for workers in (1, 4):
            parallel = batch.run_many_parallel(datasets, max_workers=workers)
            assert [r.to_payload() for r in parallel] == reference

    def test_run_many_parallel_edge_cases(self):
        batch = SessionBatch(SessionConfig(num_clusters=2, master_seed=9), ["A", "B", "C"])
        assert batch.run_many_parallel([]) == []
        with pytest.raises(ConfigurationError):
            batch.run_many_parallel([_partitions()], max_workers=0)
        with pytest.raises(ConfigurationError):
            batch.run_many_parallel([{"A": _partitions()["A"]}])

    def test_validation(self):
        config = SessionConfig(num_clusters=2)
        with pytest.raises(ConfigurationError):
            SessionBatch(config, ["A"])
        with pytest.raises(ConfigurationError):
            SessionBatch(config, ["A", "A"])
        with pytest.raises(ConfigurationError):
            SessionBatch(config, ["A", "TP"])
        batch = SessionBatch(config, ["A", "B"])
        with pytest.raises(ConfigurationError):
            batch.session({"A": _partitions()["A"], "C": _partitions()["C"]})

    def test_session_rejects_wrong_secret_pairs(self):
        config = SessionConfig(num_clusters=2)
        batch = SessionBatch(config, ["A", "B"])
        partitions = {k: v for k, v in _partitions().items() if k in ("A", "B")}
        with pytest.raises(ConfigurationError, match="shared_secrets"):
            ClusteringSession(
                config,
                partitions,
                shared_secrets={("A", "B"): batch._secrets[("A", "B")]},
            )


def _synthetic(name, run=None, deps=(), order=(0,)):
    return Step(name=name, run=run or (lambda: None), deps=deps, order=order)


class TestFailurePropagation:
    """A failed step dooms exactly its dependents -- nothing else."""

    def _crash(self):
        raise PartyCrashError("B")

    def test_serial_tolerant_cancels_dependents(self):
        session, _ = _tapped_session("sequential")
        scheduler = ConstructionScheduler(
            session.holders, session.third_party, tolerate_faults=True
        )
        scheduler._steps.extend(
            [
                _synthetic("lost:fail", run=self._crash, order=(0,)),
                _synthetic("lost:child", deps=("lost:fail",), order=(1,)),
                _synthetic("lost:grandchild", deps=("lost:child",), order=(2,)),
                _synthetic("kept:ok", order=(3,)),
            ]
        )
        scheduler._names.update(s.name for s in scheduler._steps)
        outcome = scheduler.run()
        assert isinstance(outcome, ConstructionOutcome)
        assert outcome.degraded
        assert list(outcome.trace) == ["kept:ok"]
        assert dict(outcome.report.failed_steps) == {
            "lost:fail": "PartyCrashError: party 'B' has crashed"
        }
        assert set(outcome.report.cancelled_steps) == {
            "lost:child", "lost:grandchild"
        }
        assert outcome.report.failed_attributes == ("lost",)
        assert outcome.report.completed_attributes == ("kept",)
        assert "lost" in outcome.report.summary()

    def test_serial_non_fault_error_still_aborts(self):
        session, _ = _tapped_session("sequential")
        scheduler = ConstructionScheduler(
            session.holders, session.third_party, tolerate_faults=True
        )

        def boom():
            raise ValueError("wrong matrix shape")

        scheduler._steps.append(_synthetic("a:bad", run=boom))
        with pytest.raises(ValueError, match="wrong matrix shape"):
            scheduler.run()

    def test_parallel_tolerant_accounts_for_every_step(self):
        """trace + failed + cancelled partition the graph exactly."""
        steps = [
            _synthetic("lost:fail", run=self._crash, order=(0,)),
            _synthetic("lost:child", deps=("lost:fail",), order=(1,)),
            _synthetic("kept:a", order=(2,)),
            _synthetic("kept:b", deps=("kept:a",), order=(3,)),
        ]
        run = _ParallelRun(steps, max_workers=2, tolerate_faults=True)
        trace, failed, cancelled = run.run()
        assert sorted(trace) == ["kept:a", "kept:b"]
        assert set(failed) == {"lost:fail"}
        assert "PartyCrashError" in failed["lost:fail"]
        assert cancelled == ("lost:child",)
        assert len(trace) + len(failed) + len(cancelled) == len(steps)

    def test_parallel_intolerant_preserves_original_exception(self):
        marker = LaneTimeoutError("A", "B", "blob", "t", attempts=3, reason="gone")
        def boom():
            raise marker
        run = _ParallelRun([_synthetic("a:bad", run=boom)], max_workers=2)
        with pytest.raises(LaneTimeoutError) as exc:
            run.run()
        assert exc.value is marker
        assert exc.value.attempts == 3

    def test_parallel_tolerant_run_via_session_stays_clean(self):
        """tolerate_faults on a fault-free parallel run degrades nothing
        and returns the same result as the plain run."""
        suite = ProtocolSuiteConfig(
            construction_schedule="parallel", tolerate_faults=True
        )
        partitions = _partitions()
        session = ClusteringSession(
            SessionConfig(num_clusters=2, master_seed=3, suite=suite), partitions
        )
        result = session.run()
        assert not session.degraded
        assert session.degraded_report is not None
        assert not session.degraded_report.degraded
        baseline, _ = _tapped_session("sequential")
        assert result.to_payload() == baseline.run().to_payload()


class TestWatchdog:
    def test_watchdog_validation(self):
        session, _ = _tapped_session("sequential")
        with pytest.raises(ConfigurationError):
            ConstructionScheduler(
                session.holders, session.third_party, watchdog_timeout=0
            )
        with pytest.raises(ConfigurationError):
            SessionConfig(num_clusters=2, watchdog_timeout=-1.0)

    def test_watchdog_off_by_default(self):
        assert SessionConfig(num_clusters=2).watchdog_timeout is None

    def test_watchdog_reports_stall_with_pending_steps(self):
        """A wedged worker turns into a stall report, not a silent hang."""
        release = threading.Event()
        steps = [
            _synthetic("a:wedged", run=release.wait, order=(0,)),
            _synthetic("a:after", deps=("a:wedged",), order=(1,)),
        ]
        run = _ParallelRun([*steps], max_workers=2, watchdog_timeout=0.05)
        try:
            with pytest.raises(SchedulerStallError) as exc:
                run.run()
        finally:
            release.set()
        detail = str(exc.value)
        assert "a:after" in detail and "a:wedged" in detail
        assert "no progress" in detail

    def test_watchdog_does_not_fire_while_progressing(self):
        """Steps finishing within the window keep the watchdog quiet even
        when the whole run takes much longer than the timeout."""
        suite = ProtocolSuiteConfig(construction_schedule="parallel")
        partitions = _partitions()
        session = ClusteringSession(
            SessionConfig(
                num_clusters=2, master_seed=3, suite=suite, watchdog_timeout=30.0
            ),
            partitions,
        )
        result = session.run()
        baseline, _ = _tapped_session("sequential")
        assert result.to_payload() == baseline.run().to_payload()
