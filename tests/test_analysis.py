"""Tests for the cost model and measurement harness."""

from __future__ import annotations

import pytest

from repro.analysis.comm_costs import (
    CostModel,
    fit_loglog_slope,
    measure_alphanumeric_protocol,
    measure_categorical_protocol,
    measure_numeric_protocol,
)
from repro.exceptions import ConfigurationError


class TestCostModel:
    MODEL = CostModel()

    def test_local_matrix_entries(self):
        assert CostModel.local_matrix_entries(1) == 0
        assert CostModel.local_matrix_entries(4) == 6

    def test_numeric_terms(self):
        small = self.MODEL.numeric_initiator_bytes(8)
        large = self.MODEL.numeric_initiator_bytes(16)
        # Quadratic local term dominates: 4x growth for 2x size.
        assert large / small > 3.0

    def test_responder_term_bilinear(self):
        base = self.MODEL.numeric_responder_bytes(4, 4)
        double_n = self.MODEL.numeric_responder_bytes(4, 8)
        assert double_n > base

    def test_categorical_linear(self):
        assert self.MODEL.categorical_holder_bytes(10) == pytest.approx(
            2 * self.MODEL.categorical_holder_bytes(5)
        )

    def test_alnum_terms(self):
        quad = self.MODEL.alnum_responder_bytes(4, 4, 10, 10)
        assert quad > self.MODEL.alnum_initiator_bytes(4, 10)


class TestSlopeFit:
    def test_exact_power_laws(self):
        sizes = [10, 20, 40, 80]
        assert fit_loglog_slope(sizes, [s**2 for s in sizes]) == pytest.approx(2.0)
        assert fit_loglog_slope(sizes, [s for s in sizes]) == pytest.approx(1.0)
        assert fit_loglog_slope(sizes, [s**3 for s in sizes]) == pytest.approx(3.0)

    def test_constant_is_slope_zero(self):
        assert fit_loglog_slope([1, 2, 4], [7, 7, 7]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_loglog_slope([1], [1])
        with pytest.raises(ConfigurationError):
            fit_loglog_slope([1, 2], [1])


class TestMeasurementHarness:
    def test_numeric_breakdown_keys(self):
        result = measure_numeric_protocol(6, 4)
        assert result["initiator_local_matrix"] > 0
        assert result["initiator_masked"] > 0
        assert result["responder_matrix"] > 0
        assert result["grand_total"] >= result["initiator_total"]

    def test_numeric_per_pair_costs_more(self):
        """The mitigation's price: the initiator ships a full matrix."""
        batch = measure_numeric_protocol(8, 8, batch=True)
        per_pair = measure_numeric_protocol(8, 8, batch=False)
        assert per_pair["initiator_masked"] > 4 * batch["initiator_masked"]

    def test_secure_channels_add_overhead(self):
        plain = measure_numeric_protocol(4, 4, secure=False)
        sealed = measure_numeric_protocol(4, 4, secure=True)
        assert sealed["grand_total"] > plain["grand_total"]

    def test_alphanumeric_breakdown(self):
        result = measure_alphanumeric_protocol(3, 3, length=8)
        assert result["responder_matrix"] > result["initiator_masked"]

    def test_categorical_breakdown(self):
        result = measure_categorical_protocol(10)
        assert result["holder_column"] > 0

    def test_numeric_quadratic_slope(self):
        sizes = [8, 16, 32]
        costs = [measure_numeric_protocol(n, n)["responder_matrix"] for n in sizes]
        slope = fit_loglog_slope(sizes, costs)
        assert 1.7 < slope < 2.2

    def test_categorical_linear_slope(self):
        sizes = [16, 32, 64]
        costs = [measure_categorical_protocol(n)["holder_column"] for n in sizes]
        slope = fit_loglog_slope(sizes, costs)
        assert 0.8 < slope < 1.2
