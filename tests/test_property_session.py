"""Hypothesis-driven whole-pipeline properties.

The strongest form of the paper's central claim: for *arbitrary* typed
data, *arbitrary* partitionings and *arbitrary* seeds, the privately
constructed dissimilarity matrix is bit-for-bit the centralized one and
the published result is a valid partition of exactly the input objects.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.centralized import centralized_pipeline
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("num", AttributeType.NUMERIC, precision=2),
    AttributeSpec("seq", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    AttributeSpec("cat", AttributeType.CATEGORICAL),
]

_row = st.tuples(
    st.one_of(
        st.integers(-10**6, 10**6),
        st.decimals(
            min_value=-1000, max_value=1000, places=2, allow_nan=False
        ).map(float),
    ),
    st.text(alphabet="ACGT", max_size=8),
    st.sampled_from(["x", "y", "z"]),
)

_workload = st.lists(_row, min_size=3, max_size=9)


def _partition(rows, num_sites):
    """Deterministic round-robin partition, every site non-empty."""
    sites = [chr(ord("A") + i) for i in range(num_sites)]
    buckets = {s: [] for s in sites}
    for i, row in enumerate(rows):
        buckets[sites[i % num_sites]].append(list(row))
    return {
        s: DataMatrix(SCHEMA, bucket) for s, bucket in buckets.items() if bucket
    }


@given(
    rows=_workload,
    num_sites=st.integers(2, 3),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=20, deadline=None)
def test_property_pipeline_exactness(rows, num_sites, seed):
    num_sites = min(num_sites, len(rows))
    partitions = _partition(rows, num_sites)
    if len(partitions) < 2:
        return
    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=seed), partitions
    )
    private = session.final_matrix()
    central, _, _, _ = centralized_pipeline(partitions)
    assert private.allclose(central, atol=0.0)


@given(
    rows=_workload,
    num_clusters=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_property_published_result_is_a_partition(rows, num_clusters, seed):
    partitions = _partition(rows, 2)
    if len(partitions) < 2:
        return
    total = sum(m.num_rows for m in partitions.values())
    session = ClusteringSession(
        SessionConfig(num_clusters=min(num_clusters, total), master_seed=seed),
        partitions,
    )
    result = session.run()
    members = [m for c in result.clusters for m in c.members]
    # Every object exactly once; nothing invented.
    assert len(members) == total
    assert len(set(members)) == total
    assert set(members) == set(session.index.refs())
    assert len(result.clusters) == min(num_clusters, total)


@given(batch=st.booleans(), fresh=st.booleans(), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_property_mode_flags_never_change_results(batch, fresh, seed):
    """Every protocol-mode combination yields the identical matrix."""
    rows = [
        [10, "ACGT", "x"],
        [12, "ACGA", "x"],
        [500, "TTTT", "y"],
        [505, "TTTA", "y"],
        [11, "ACGT", "z"],
    ]
    partitions = _partition(rows, 2)
    suite = ProtocolSuiteConfig(
        batch_numeric=batch, fresh_string_masks=fresh, secure_channels=False
    )
    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=seed, suite=suite), partitions
    )
    central, _, _, _ = centralized_pipeline(partitions)
    assert session.final_matrix().allclose(central, atol=0.0)
