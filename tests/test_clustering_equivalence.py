"""The fast clustering layer against its preserved seed reference.

PR 3's contract: the NN-chain/cached-argmin agglomerative, the
FasterPAM-style k-medoids and the condensed-array quality metrics must
reproduce the seed implementations (``repro.clustering.reference``)
*identically* -- merge-for-merge dendrograms with bit-equal heights,
identical PAM medoids/labels/iterations, and metric values within 1e-9
(exactly, for the integer-valued pair counts).  scipy cross-validation
rides along as an independent referee.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.cluster.hierarchy import cophenet, linkage as scipy_linkage

from repro.clustering import quality
from repro.clustering.kmedoids import _build_init, k_medoids
from repro.clustering.linkage import agglomerative
from repro.clustering.reference import (
    _build_init as reference_build_init,
    reference_adjusted_rand_index,
    reference_agglomerative,
    reference_average_square_distance,
    reference_cophenetic_correlation,
    reference_cophenetic_matrix,
    reference_dunn_index,
    reference_k_medoids,
    reference_pair_counts,
    reference_purity,
    reference_rand_index,
    reference_silhouette_score,
)
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.types import LinkageMethod

METHODS = list(LinkageMethod)


def random_matrix(n: int, seed: int) -> DissimilarityMatrix:
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 3))
    square = np.linalg.norm(points[:, None] - points[None, :], axis=2)
    return DissimilarityMatrix.from_square(square)


def tied_matrix(n: int, seed: int, levels: int = 4) -> DissimilarityMatrix:
    """Heavily tied distances (categorical-style small integer levels)."""
    rng = np.random.default_rng(seed)
    square = rng.integers(1, levels + 1, size=(n, n)).astype(np.float64)
    square = np.minimum(square, square.T)
    np.fill_diagonal(square, 0.0)
    return DissimilarityMatrix.from_square(square)


def mixed_matrix(n: int, seed: int) -> DissimilarityMatrix:
    """Continuous distances with deliberately duplicated entries."""
    base = random_matrix(n, seed)
    values = np.array(base.condensed)
    rng = np.random.default_rng(seed + 7)
    half = values.size // 2
    values[rng.permutation(values.size)[:half]] = rng.choice(values, size=half)
    return DissimilarityMatrix(n, values)


MAKERS = [random_matrix, tied_matrix, mixed_matrix]


class TestAgglomerativeEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("maker", MAKERS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_merge_for_merge_identical(self, method, maker, seed):
        """Same left/right/size sequence AND bit-equal heights."""
        matrix = maker(8 + 9 * seed, seed * 13 + 1)
        assert (
            agglomerative(matrix, method).merges
            == reference_agglomerative(matrix, method).merges
        )

    @pytest.mark.parametrize("method", METHODS)
    def test_matches_scipy_heights_and_cophenet(self, method):
        """Independent referee: same merge heights and cophenetic
        distances as ``scipy.cluster.hierarchy`` on general-position
        input."""
        matrix = random_matrix(24, 5)
        ours = agglomerative(matrix, method)
        theirs = scipy_linkage(matrix.to_scipy_condensed(), method=method.value)
        assert np.allclose(sorted(ours.heights), sorted(theirs[:, 2]), rtol=1e-8)
        # Our condensed layout (i > j, row-major) -> scipy's (i < j).
        n = matrix.num_objects
        i, j = np.triu_indices(n, 1)
        ours_scipy_order = ours.cophenetic_condensed()[j * (j - 1) // 2 + i]
        assert np.allclose(ours_scipy_order, cophenet(theirs), rtol=1e-8)

    def test_two_objects_and_single_object(self):
        lonely = DissimilarityMatrix.zeros(1)
        assert agglomerative(lonely, "single").merges == ()
        pair = DissimilarityMatrix.zeros(2)
        pair[1, 0] = 3.0
        assert (
            agglomerative(pair, "ward").merges
            == reference_agglomerative(pair, "ward").merges
        )

    def test_all_equal_distances(self):
        """Fully degenerate input: every pair tied."""
        n = 9
        matrix = DissimilarityMatrix(n, np.full(n * (n - 1) // 2, 2.5))
        for method in METHODS:
            assert (
                agglomerative(matrix, method).merges
                == reference_agglomerative(matrix, method).merges
            )


class TestKMedoidsEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_results_identical(self, seed):
        n = 20 + (seed % 3) * 25
        k = 2 + seed
        matrix = random_matrix(n, seed + 50)
        fast = k_medoids(matrix, k)
        ref = reference_k_medoids(matrix, k)
        assert fast.labels == ref.labels
        assert fast.medoids == ref.medoids
        assert fast.iterations == ref.iterations
        assert fast.converged == ref.converged
        assert fast.cost == pytest.approx(ref.cost, abs=1e-9)

    def test_tied_matrix_identical(self):
        matrix = tied_matrix(30, 3)
        fast = k_medoids(matrix, 4)
        ref = reference_k_medoids(matrix, 4)
        assert (fast.labels, fast.medoids) == (ref.labels, ref.medoids)

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_build_init_micro(self, k):
        """The vectorized BUILD matches the seed's scan medoid-for-medoid
        (its own satellite assertion: no ``candidate in medoids`` list
        scan, one numpy gain computation per added medoid)."""
        for seed in range(8):
            square = random_matrix(25, seed + 200).to_square()
            assert _build_init(square, k) == reference_build_init(square, k)

    def test_k_equals_n_and_k_one(self):
        matrix = random_matrix(12, 9)
        for k in (1, 12):
            fast = k_medoids(matrix, k)
            ref = reference_k_medoids(matrix, k)
            assert (fast.labels, fast.medoids, fast.converged) == (
                ref.labels,
                ref.medoids,
                ref.converged,
            )


class TestQualityEquivalence:
    def _case(self, seed):
        matrix = random_matrix(40, seed + 300)
        rng = np.random.default_rng(seed)
        labels = [int(x) for x in rng.integers(0, 4, size=40)]
        return matrix, labels

    @pytest.mark.parametrize("seed", range(5))
    def test_silhouette(self, seed):
        matrix, labels = self._case(seed)
        assert quality.silhouette_score(matrix, labels) == pytest.approx(
            reference_silhouette_score(matrix, labels), abs=1e-9
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_dunn(self, seed):
        matrix, labels = self._case(seed)
        assert quality.dunn_index(matrix, labels) == pytest.approx(
            reference_dunn_index(matrix, labels), abs=1e-9
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_average_square_distance(self, seed):
        matrix, labels = self._case(seed)
        fast = quality.average_square_distance(matrix, labels)
        ref = reference_average_square_distance(matrix, labels)
        assert fast.keys() == ref.keys()
        for key in ref:
            assert fast[key] == pytest.approx(ref[key], abs=1e-9)

    @pytest.mark.parametrize("method", METHODS)
    def test_cophenetic_correlation(self, method):
        matrix = random_matrix(30, 17)
        dendrogram = agglomerative(matrix, method)
        assert quality.cophenetic_correlation(matrix, dendrogram) == pytest.approx(
            reference_cophenetic_correlation(matrix, dendrogram), abs=1e-9
        )

    def test_cophenetic_matrix_exact(self):
        dendrogram = agglomerative(random_matrix(25, 23), "ward")
        assert np.array_equal(
            dendrogram.cophenetic_matrix(), reference_cophenetic_matrix(dendrogram)
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_pair_count_metrics_exact(self, seed):
        rng = np.random.default_rng(seed + 900)
        truth = [int(x) for x in rng.integers(0, 5, size=60)]
        predicted = [int(x) for x in rng.integers(0, 4, size=60)]
        assert quality._pair_counts(truth, predicted) == reference_pair_counts(
            truth, predicted
        )
        assert quality.rand_index(truth, predicted) == reference_rand_index(
            truth, predicted
        )
        assert quality.adjusted_rand_index(
            truth, predicted
        ) == reference_adjusted_rand_index(truth, predicted)
        assert quality.purity(truth, predicted) == reference_purity(truth, predicted)

    def test_average_square_distance_singletons(self):
        matrix = random_matrix(5, 1)
        labels = [0, 1, 1, 2, 2]
        assert quality.average_square_distance(
            matrix, labels
        ) == reference_average_square_distance(matrix, labels)
