"""Error-path and contract tests for the party role implementations."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolSuiteConfig
from repro.core.construction import construct_attribute
from repro.crypto.keys import secret_from_passphrase
from repro.crypto.prng import make_prng
from repro.data.matrix import AttributeSpec, DataMatrix, Schema
from repro.data.partition import GlobalIndex
from repro.exceptions import ProtocolError
from repro.network.simulator import Network
from repro.parties.base import Party
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("v", AttributeType.NUMERIC, precision=0),
    AttributeSpec("c", AttributeType.CATEGORICAL),
]


def _setup():
    network = Network()
    for name in ("A", "B", "TP"):
        network.add_party(name)
    for pair in (("A", "B"), ("A", "TP"), ("B", "TP")):
        network.connect(*pair, secure=False)
    suite = ProtocolSuiteConfig(secure_channels=False)
    holders = {
        "A": DataHolder("A", DataMatrix(SCHEMA, [[1, "x"], [2, "y"]]), network, suite, make_prng("ea")),
        "B": DataHolder("B", DataMatrix(SCHEMA, [[3, "x"]]), network, suite, make_prng("eb")),
    }
    index = GlobalIndex({"A": 2, "B": 1})
    tp = ThirdParty("TP", network, Schema(SCHEMA), index, suite)
    for pair in (("A", "B"), ("A", "TP"), ("B", "TP")):
        secret = secret_from_passphrase(pair, f"secret-{pair}")
        a, b = pair
        holders.get(a, tp).set_secret(b, secret) if a in holders else tp.set_secret(b, secret)
        holders.get(b, tp).set_secret(a, secret) if b in holders else tp.set_secret(a, secret)
    return network, holders, tp


class TestPartyBase:
    def test_empty_name_rejected(self):
        with pytest.raises(ProtocolError):
            Party("", Network())

    def test_self_secret_rejected(self):
        party = Party("A", Network())
        with pytest.raises(ProtocolError):
            party.set_secret("A", secret_from_passphrase(("A", "B"), 1))

    def test_mismatched_secret_rejected(self):
        party = Party("A", Network())
        with pytest.raises(ProtocolError):
            party.set_secret("B", secret_from_passphrase(("C", "D"), 1))

    def test_missing_secret(self):
        party = Party("A", Network())
        with pytest.raises(ProtocolError):
            party.secret_with("B")


class TestDataHolder:
    def test_local_matrix_rejects_categorical(self):
        _, holders, _ = _setup()
        with pytest.raises(ProtocolError):
            holders["A"].local_matrix(SCHEMA[1])

    def test_send_categorical_without_group_key(self):
        _, holders, _ = _setup()
        with pytest.raises(ProtocolError):
            holders["A"].send_categorical(SCHEMA[1], "TP")

    def test_weights_length_validated(self):
        _, holders, _ = _setup()
        with pytest.raises(ProtocolError):
            holders["A"].send_weights("TP", [1.0])

    def test_group_key_distribution(self):
        _, holders, _ = _setup()
        holders["A"].distribute_group_key(["B"])
        holders["B"].receive_group_key("A")
        assert holders["A"]._group_key == holders["B"]._group_key

    def test_respond_checks_attribute_match(self):
        """A responder expecting attribute X must reject a masked vector
        for attribute Y -- protocol-state divergence is loud."""
        schema = [
            AttributeSpec("v", AttributeType.NUMERIC, precision=0),
            AttributeSpec("w", AttributeType.NUMERIC, precision=0),
        ]
        network = Network()
        for name in ("A", "B", "TP"):
            network.add_party(name)
        for pair in (("A", "B"), ("A", "TP"), ("B", "TP")):
            network.connect(*pair, secure=False)
        suite = ProtocolSuiteConfig(secure_channels=False)
        holder_a = DataHolder(
            "A", DataMatrix(schema, [[1, 10]]), network, suite, make_prng("a")
        )
        holder_b = DataHolder(
            "B", DataMatrix(schema, [[2, 20]]), network, suite, make_prng("b")
        )
        for pair in (("A", "B"), ("A", "TP"), ("B", "TP")):
            secret = secret_from_passphrase(pair, "s")
            if "A" in pair:
                holder_a.set_secret(pair[0] if pair[0] != "A" else pair[1], secret)
            if "B" in pair:
                holder_b.set_secret(pair[0] if pair[0] != "B" else pair[1], secret)
        holder_a.numeric_initiate(schema[0], "B", "TP", responder_size=1)
        with pytest.raises(ProtocolError):
            holder_b.numeric_respond(schema[1], "A", "TP")


class TestThirdParty:
    def test_attribute_matrix_before_finalize(self):
        _, _, tp = _setup()
        with pytest.raises(ProtocolError):
            tp.attribute_matrix("v")

    def test_finalize_unconstructed_attribute(self):
        _, _, tp = _setup()
        with pytest.raises(ProtocolError):
            tp.finalize_attribute("v")

    def test_finalize_categorical_without_columns(self):
        _, _, tp = _setup()
        with pytest.raises(ProtocolError):
            tp.finalize_categorical("c")

    def test_merged_matrix_requires_all_attributes(self):
        network, holders, tp = _setup()
        construct_attribute(SCHEMA[0], holders, tp)
        with pytest.raises(ProtocolError, match="not finalised"):
            tp.merged_matrix()

    def test_weights_length_validated(self):
        network, holders, tp = _setup()
        holders["A"].send(tp.name, "weights", [1.0])
        with pytest.raises(ProtocolError):
            tp.receive_weights("A")

    def test_duplicate_encrypted_column_rejected(self):
        network, holders, tp = _setup()
        holders["A"].distribute_group_key(["B"])
        holders["B"].receive_group_key("A")
        holders["A"].send_categorical(SCHEMA[1], "TP")
        tp.receive_encrypted_column("A")
        holders["A"].send_categorical(SCHEMA[1], "TP")
        with pytest.raises(ProtocolError, match="duplicate"):
            tp.receive_encrypted_column("A")

    def test_comparison_matrix_for_wrong_type_rejected(self):
        network, holders, tp = _setup()
        holders["B"].send(
            "TP",
            "comparison_matrix",
            {"attribute": "c", "initiator": "A", "matrix": [[1]]},
        )
        with pytest.raises(ProtocolError, match="non-numeric"):
            tp.receive_numeric_block("B")

    def test_encrypted_column_for_wrong_type_rejected(self):
        network, holders, tp = _setup()
        holders["A"].send(
            "TP", "encrypted_column", {"attribute": "v", "ciphertexts": [b"x"]}
        )
        with pytest.raises(ProtocolError, match="non-categorical"):
            tp.receive_encrypted_column("A")


class TestConstruction:
    def test_holder_site_mismatch(self):
        network, holders, tp = _setup()
        del holders["B"]
        with pytest.raises(ProtocolError, match="do not match"):
            construct_attribute(SCHEMA[0], holders, tp)

    def test_numeric_attribute_end_to_end(self):
        network, holders, tp = _setup()
        construct_attribute(SCHEMA[0], holders, tp)
        matrix = tp.attribute_matrix("v")
        # Values 1, 2 | 3: distances 1, 2, 1 -> normalised by 2.
        assert matrix[1, 0] == pytest.approx(0.5)
        assert matrix[2, 0] == pytest.approx(1.0)
        assert matrix[2, 1] == pytest.approx(0.5)
        network.assert_drained()
