"""Tests for the condensed dissimilarity matrix and its operations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance.dissimilarity import DissimilarityMatrix
from repro.distance.local import local_dissimilarity
from repro.distance.merge import merge_weighted
from repro.distance.normalize import max_normalize, min_max_normalize_column
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_zeros(self):
        d = DissimilarityMatrix.zeros(4)
        assert d.num_objects == 4
        assert d[3, 1] == 0.0

    def test_single_object(self):
        d = DissimilarityMatrix.zeros(1)
        assert d.condensed.size == 0
        assert d.max_value() == 0.0

    def test_from_pairwise(self):
        d = DissimilarityMatrix.from_pairwise(4, lambda i, j: i + j)
        assert d[2, 1] == 3
        assert d[0, 3] == 3

    def test_from_pairwise_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            DissimilarityMatrix.from_pairwise(3, lambda i, j: -1)

    def test_from_square_roundtrip(self):
        d = DissimilarityMatrix.from_pairwise(5, lambda i, j: abs(i - j) * 1.5)
        assert DissimilarityMatrix.from_square(d.to_square()) == d

    def test_from_square_validation(self):
        with pytest.raises(ConfigurationError):
            DissimilarityMatrix.from_square(np.ones((2, 3)))
        asym = np.array([[0, 1], [2, 0]], dtype=float)
        with pytest.raises(ConfigurationError):
            DissimilarityMatrix.from_square(asym)
        bad_diag = np.array([[1.0, 0], [0, 0]])
        with pytest.raises(ConfigurationError):
            DissimilarityMatrix.from_square(bad_diag)

    def test_from_square_rejects_negative_entries(self):
        """Regression: ``from_square`` used to write into storage directly,
        bypassing the constructor's non-negativity check."""
        with pytest.raises(ConfigurationError):
            DissimilarityMatrix.from_square(
                np.array([[0.0, -1.0], [-1.0, 0.0]])
            )

    def test_from_square_rejects_nonfinite_entries(self):
        square = np.array([[0.0, np.inf], [np.inf, 0.0]])
        with pytest.raises(ConfigurationError):
            DissimilarityMatrix.from_square(square)

    def test_condensed_length_validation(self):
        with pytest.raises(ConfigurationError):
            DissimilarityMatrix(3, np.zeros(5))

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            DissimilarityMatrix(3, np.array([1.0, -0.5, 2.0]))

    def test_nonfinite_rejected(self):
        with pytest.raises(ConfigurationError):
            DissimilarityMatrix(3, np.array([1.0, np.inf, 2.0]))


class TestIndexing:
    def test_symmetric_access(self):
        d = DissimilarityMatrix.zeros(3)
        d[2, 0] = 5.0
        assert d[0, 2] == 5.0
        assert d[2, 0] == 5.0

    def test_diagonal_is_zero(self):
        d = DissimilarityMatrix.zeros(3)
        assert d[1, 1] == 0.0

    def test_diagonal_write_guard(self):
        d = DissimilarityMatrix.zeros(3)
        d[1, 1] = 0  # allowed no-op
        with pytest.raises(ConfigurationError):
            d[1, 1] = 1.0

    def test_out_of_range(self):
        d = DissimilarityMatrix.zeros(3)
        with pytest.raises(ConfigurationError):
            _ = d[0, 3]

    def test_invalid_value(self):
        d = DissimilarityMatrix.zeros(3)
        with pytest.raises(ConfigurationError):
            d[1, 0] = -1.0

    def test_condensed_read_only(self):
        d = DissimilarityMatrix.zeros(3)
        with pytest.raises(ValueError):
            d.condensed[0] = 1.0

    def test_figure2_order(self):
        """Condensed layout matches Figure 2: row-major below diagonal."""
        d = DissimilarityMatrix.zeros(4)
        d[1, 0] = 1
        d[2, 0] = 2
        d[2, 1] = 3
        d[3, 0] = 4
        d[3, 1] = 5
        d[3, 2] = 6
        assert d.condensed.tolist() == [1, 2, 3, 4, 5, 6]


class TestBlocksAndSubmatrix:
    def test_set_block(self):
        d = DissimilarityMatrix.zeros(5)
        block = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        d.set_block([2, 3, 4], [0, 1], block)
        assert d[2, 0] == 1.0 and d[4, 1] == 6.0
        assert d[0, 2] == 1.0

    def test_set_block_shape_guard(self):
        d = DissimilarityMatrix.zeros(4)
        with pytest.raises(ConfigurationError):
            d.set_block([0, 1], [2], np.zeros((2, 2)))

    def test_set_block_diagonal_guard(self):
        d = DissimilarityMatrix.zeros(4)
        with pytest.raises(ConfigurationError):
            d.set_block([0, 1], [1, 2], np.ones((2, 2)))

    def test_set_block_duplicate_rows_rejected(self):
        """Regression: duplicate indices used to let later block entries
        silently overwrite earlier ones."""
        d = DissimilarityMatrix.zeros(5)
        with pytest.raises(ConfigurationError):
            d.set_block([2, 2], [0, 1], np.ones((2, 2)))
        with pytest.raises(ConfigurationError):
            d.set_block([3, 4], [0, 0], np.ones((2, 2)))

    def test_set_block_out_of_range_rejected(self):
        d = DissimilarityMatrix.zeros(4)
        with pytest.raises(ConfigurationError):
            d.set_block([3, 4], [0, 1], np.ones((2, 2)))

    def test_set_block_invalid_values_rejected(self):
        d = DissimilarityMatrix.zeros(4)
        with pytest.raises(ConfigurationError):
            d.set_block([2, 3], [0, 1], np.array([[1.0, -2.0], [3.0, 4.0]]))
        with pytest.raises(ConfigurationError):
            d.set_block([2, 3], [0, 1], np.full((2, 2), np.nan))

    def test_set_diagonal_block(self):
        local = DissimilarityMatrix.from_pairwise(3, lambda i, j: 10 * i + j)
        d = DissimilarityMatrix.zeros(6)
        d.set_diagonal_block(2, local)
        for i in range(3):
            for j in range(i):
                assert d[2 + i, 2 + j] == local[i, j]
        assert d[1, 0] == 0.0 and d[5, 1] == 0.0

    def test_set_diagonal_block_out_of_range(self):
        d = DissimilarityMatrix.zeros(4)
        with pytest.raises(ConfigurationError):
            d.set_diagonal_block(2, DissimilarityMatrix.zeros(3))
        with pytest.raises(ConfigurationError):
            d.set_diagonal_block(-1, DissimilarityMatrix.zeros(2))

    def test_submatrix(self):
        d = DissimilarityMatrix.from_pairwise(4, lambda i, j: 10 * i + j)
        sub = d.submatrix([3, 1])
        assert sub.num_objects == 2
        assert sub[1, 0] == d[3, 1]

    def test_submatrix_duplicate_rejected(self):
        d = DissimilarityMatrix.zeros(3)
        with pytest.raises(ConfigurationError):
            d.submatrix([0, 0])

    def test_submatrix_out_of_range_rejected(self):
        d = DissimilarityMatrix.zeros(3)
        with pytest.raises(ConfigurationError):
            d.submatrix([0, 3])
        with pytest.raises(ConfigurationError):
            d.submatrix([-1, 1])

    @given(
        n=st.integers(2, 10),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_square_condensed_roundtrips(self, n, seed):
        """Fancy-indexed from_square/to_square/to_scipy_condensed agree
        with the element-wise definitions."""
        rng = np.random.default_rng(seed)
        square = np.abs(rng.normal(size=(n, n)))
        square = (square + square.T) / 2
        np.fill_diagonal(square, 0.0)
        d = DissimilarityMatrix.from_square(square)
        assert np.allclose(d.to_square(), square)
        from scipy.spatial.distance import squareform

        assert np.allclose(d.to_scipy_condensed(), squareform(square))
        order = list(rng.permutation(n))
        sub = d.submatrix(order)
        for a, i in enumerate(order):
            for b, j in enumerate(order):
                assert sub[a, b] == pytest.approx(square[i, j])


class TestNormalizationAndStats:
    def test_normalized_range(self):
        d = DissimilarityMatrix.from_pairwise(5, lambda i, j: abs(i - j) * 7.0)
        n = d.normalized()
        assert n.max_value() == 1.0
        assert np.all(n.condensed >= 0)

    def test_normalized_preserves_ratios(self):
        d = DissimilarityMatrix.from_pairwise(4, lambda i, j: float(i + j))
        n = d.normalized()
        assert n[2, 1] / n[3, 2] == pytest.approx(d[2, 1] / d[3, 2])

    def test_all_zero_normalizes_to_zero(self):
        d = DissimilarityMatrix.zeros(3)
        assert d.normalized() == d

    def test_max_normalize_alias(self):
        d = DissimilarityMatrix.from_pairwise(3, lambda i, j: 2.0)
        assert max_normalize(d).max_value() == 1.0

    def test_mean_value(self):
        d = DissimilarityMatrix.from_pairwise(3, lambda i, j: 2.0)
        assert d.mean_value() == 2.0
        assert DissimilarityMatrix.zeros(1).mean_value() == 0.0

    def test_triangle_inequality_check(self):
        metric = DissimilarityMatrix.from_pairwise(5, lambda i, j: abs(i - j))
        assert metric.check_triangle_inequality()
        broken = DissimilarityMatrix.zeros(3)
        broken[1, 0] = 1.0
        broken[2, 1] = 1.0
        broken[2, 0] = 10.0
        assert not broken.check_triangle_inequality()

    def test_allclose(self):
        a = DissimilarityMatrix.from_pairwise(3, lambda i, j: 1.0)
        b = DissimilarityMatrix.from_pairwise(3, lambda i, j: 1.0 + 1e-12)
        assert a.allclose(b, atol=1e-9)
        assert not a.allclose(DissimilarityMatrix.zeros(3))

    def test_scipy_condensed_matches_squareform(self):
        from scipy.spatial.distance import squareform

        d = DissimilarityMatrix.from_pairwise(6, lambda i, j: float(i * 7 + j))
        assert np.allclose(d.to_scipy_condensed(), squareform(d.to_square()))


class TestLocalAndMerge:
    def test_local_dissimilarity_figure12(self):
        d = local_dissimilarity([10, 13, 7], lambda a, b: abs(a - b))
        assert d[1, 0] == 3 and d[2, 0] == 3 and d[2, 1] == 6

    def test_merge_equal_weights(self):
        a = DissimilarityMatrix.from_pairwise(3, lambda i, j: 1.0)
        b = DissimilarityMatrix.from_pairwise(3, lambda i, j: 3.0)
        merged = merge_weighted([a, b])
        assert merged[1, 0] == 2.0

    def test_merge_weight_ratios(self):
        a = DissimilarityMatrix.from_pairwise(3, lambda i, j: 1.0)
        b = DissimilarityMatrix.from_pairwise(3, lambda i, j: 3.0)
        merged = merge_weighted([a, b], [3.0, 1.0])
        assert merged[1, 0] == pytest.approx(1.5)
        # Only ratios matter.
        assert merge_weighted([a, b], [6.0, 2.0])[1, 0] == pytest.approx(1.5)

    def test_merge_validation(self):
        a = DissimilarityMatrix.zeros(3)
        with pytest.raises(ConfigurationError):
            merge_weighted([])
        with pytest.raises(ConfigurationError):
            merge_weighted([a, DissimilarityMatrix.zeros(4)])
        with pytest.raises(ConfigurationError):
            merge_weighted([a], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            merge_weighted([a], [0.0])
        with pytest.raises(ConfigurationError):
            merge_weighted([a], [-1.0])

    def test_min_max_normalize_column(self):
        assert min_max_normalize_column([2.0, 4.0, 6.0]) == [0.0, 0.5, 1.0]
        assert min_max_normalize_column([5.0, 5.0]) == [0.0, 0.0]
        with pytest.raises(ConfigurationError):
            min_max_normalize_column([])

    @given(
        values=st.lists(
            st.integers(-1000, 1000), min_size=3, max_size=12, unique=True
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_normalization_equivalence(self, values):
        """Section 2.1's claim: normalising the dissimilarity matrix equals
        min-max normalising the data first (for the |x-y| metric)."""
        from_raw = local_dissimilarity(
            values, lambda a, b: float(abs(a - b))
        ).normalized()
        scaled = min_max_normalize_column([float(v) for v in values])
        from_scaled = local_dissimilarity(scaled, lambda a, b: abs(a - b))
        assert from_raw.allclose(from_scaled, atol=1e-12)


class TestEdgePaths:
    """Edge and error paths the equivalence suites never reach."""

    def test_submatrix_applies_requested_ordering(self):
        d = DissimilarityMatrix.from_pairwise(4, lambda i, j: 10 * i + j)
        sub = d.submatrix([3, 0, 2])
        # sub's pair (a, b) must read the global pair (indices[a], indices[b]).
        assert sub[0, 1] == d[3, 0]
        assert sub[0, 2] == d[3, 2]
        assert sub[1, 2] == d[0, 2]

    def test_submatrix_reversed_is_transpose_permutation(self):
        d = DissimilarityMatrix.from_pairwise(5, lambda i, j: i * j + 1)
        rev = d.submatrix(list(range(4, -1, -1)))
        assert np.array_equal(rev.to_square(), d.to_square()[::-1, ::-1])

    def test_submatrix_duplicate_and_range_errors(self):
        d = DissimilarityMatrix.from_pairwise(4, lambda i, j: 1.0)
        with pytest.raises(ConfigurationError, match="unique"):
            d.submatrix([0, 1, 1])
        with pytest.raises(ConfigurationError, match="at least one"):
            d.submatrix([])
        with pytest.raises(ConfigurationError, match="out of range"):
            d.submatrix([0, 4])
        with pytest.raises(ConfigurationError, match="out of range"):
            d.submatrix([-1, 2])

    def test_set_diagonal_block_bounds(self):
        d = DissimilarityMatrix.zeros(5)
        local = DissimilarityMatrix.from_pairwise(3, lambda i, j: 1.0)
        with pytest.raises(ConfigurationError, match="out of range"):
            d.set_diagonal_block(-1, local)
        with pytest.raises(ConfigurationError, match="out of range"):
            d.set_diagonal_block(3, local)
        d.set_diagonal_block(2, local)  # [2, 5) fits exactly
        assert d[4, 3] == 1.0

    def test_set_diagonal_block_size_one_is_noop(self):
        d = DissimilarityMatrix.from_pairwise(3, lambda i, j: 2.0)
        before = d.condensed.copy()
        d.set_diagonal_block(1, DissimilarityMatrix.zeros(1))
        assert np.array_equal(d.condensed, before)

    def test_from_pairwise_rejects_negative_and_nonfinite(self):
        with pytest.raises(ConfigurationError, match="invalid value"):
            DissimilarityMatrix.from_pairwise(3, lambda i, j: -0.5)
        with pytest.raises(ConfigurationError, match="invalid value"):
            DissimilarityMatrix.from_pairwise(3, lambda i, j: float("nan"))
        with pytest.raises(ConfigurationError, match="invalid value"):
            DissimilarityMatrix.from_pairwise(3, lambda i, j: float("inf"))

    def test_triangle_inequality_on_nonmetric_matrix(self):
        # d(2,0) = 10 > d(2,1) + d(1,0) = 2: deliberately non-metric.
        broken = DissimilarityMatrix.zeros(4)
        broken[1, 0] = 1.0
        broken[2, 1] = 1.0
        broken[2, 0] = 10.0
        broken[3, 0] = 1.0
        broken[3, 1] = 1.0
        broken[3, 2] = 9.5
        for chunk in (None, 1, 2, 64):
            assert not broken.check_triangle_inequality(chunk_rows=chunk)

    def test_triangle_inequality_chunked_matches_reference(self):
        rng = np.random.default_rng(11)
        for trial in range(6):
            n = int(rng.integers(3, 14))
            square = rng.random((n, n))
            square = square + square.T
            np.fill_diagonal(square, 0.0)
            d = DissimilarityMatrix.from_square(square)
            reference = all(
                square[i, k] <= square[i, j] + square[j, k] + 1e-9
                for i in range(n)
                for j in range(n)
                for k in range(n)
            )
            for chunk in (None, 1, 3):
                assert d.check_triangle_inequality(chunk_rows=chunk) is reference

    def test_triangle_early_violation_never_builds_square(self, monkeypatch):
        """A violation in the first rows must return before any O(n^2)
        square materialises: ``to_square`` is forbidden and the peak
        traced allocation stays far below ``n^2`` floats."""
        import tracemalloc

        n = 512
        d = DissimilarityMatrix.from_pairwise(n, lambda i, j: float(abs(i - j)))
        d[1, 0] = 1.0
        d[2, 1] = 1.0
        d[2, 0] = 100.0  # violated via j = 1, seen in the first chunk

        def forbidden(self):
            raise AssertionError("check_triangle_inequality materialised the square")

        monkeypatch.setattr(DissimilarityMatrix, "to_square", forbidden)
        tracemalloc.start()
        try:
            assert d.check_triangle_inequality(chunk_rows=16) is False
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        square_bytes = n * n * 8
        assert peak < square_bytes // 2, (
            f"peak {peak} bytes suggests an O(n^2) intermediate "
            f"(square would be {square_bytes})"
        )


class TestGrowShrink:
    """Condensed grow/shrink used by the incremental-session subsystem."""

    def test_insert_objects_preserves_surviving_pairs(self):
        d = DissimilarityMatrix.from_pairwise(4, lambda i, j: 10 * i + j)
        grown = d.insert_objects([1, 4])
        assert grown.num_objects == 6
        survivors = [0, 2, 3, 5]  # old rows 0..3 in the new frame
        for a in range(4):
            for b in range(4):
                assert grown[survivors[a], survivors[b]] == d[a, b]
        # Fresh pairs start at zero until the delta construction fills them.
        assert grown[1, 0] == 0.0 and grown[4, 2] == 0.0 and grown[4, 1] == 0.0

    def test_insert_objects_validation(self):
        d = DissimilarityMatrix.zeros(3)
        with pytest.raises(ConfigurationError, match="unique"):
            d.insert_objects([1, 1])
        with pytest.raises(ConfigurationError, match="out of range"):
            d.insert_objects([4])
        assert d.insert_objects([]) == d

    def test_remove_inverts_insert(self):
        d = DissimilarityMatrix.from_pairwise(5, lambda i, j: i + j * 0.5)
        grown = d.insert_objects([0, 3])
        assert grown.remove_objects([0, 3]) == d

    def test_remove_objects_validation(self):
        d = DissimilarityMatrix.from_pairwise(3, lambda i, j: 1.0)
        with pytest.raises(ConfigurationError, match="unique"):
            d.remove_objects([0, 0])
        with pytest.raises(ConfigurationError, match="out of range"):
            d.remove_objects([3])
        with pytest.raises(ConfigurationError, match="every object"):
            d.remove_objects([0, 1, 2])

    def test_set_submatrix_scatters(self):
        d = DissimilarityMatrix.zeros(5)
        local = DissimilarityMatrix.from_pairwise(3, lambda i, j: 10 * i + j)
        d.set_submatrix([4, 0, 2], local)
        assert d[4, 0] == local[1, 0]
        assert d[4, 2] == local[2, 0]
        assert d[0, 2] == local[2, 1]
        assert d[1, 0] == 0.0  # untouched

    def test_set_submatrix_validation(self):
        d = DissimilarityMatrix.zeros(4)
        local = DissimilarityMatrix.zeros(2)
        with pytest.raises(ConfigurationError, match="unique"):
            d.set_submatrix([1, 1], local)
        with pytest.raises(ConfigurationError, match="indices"):
            d.set_submatrix([0, 1, 2], local)
        with pytest.raises(ConfigurationError, match="out of range"):
            d.set_submatrix([0, 4], local)

    def test_set_diagonal_delta_matches_full_block(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0]
        local = DissimilarityMatrix.from_pairwise(
            5, lambda i, j: values[i] + values[j]
        )
        old = local.submatrix([0, 1, 2])
        global_a = DissimilarityMatrix.zeros(7)
        global_a.set_diagonal_block(1, local)
        global_b = DissimilarityMatrix.zeros(5)
        global_b.set_diagonal_block(1, old)
        global_b = global_b.insert_objects([4, 5])
        tail = local.condensed[old.condensed.size :]
        global_b.set_diagonal_delta(1, 3, 5, tail)
        assert global_b == global_a

    def test_set_diagonal_delta_validation(self):
        d = DissimilarityMatrix.zeros(6)
        with pytest.raises(ConfigurationError, match="invalid diagonal delta"):
            d.set_diagonal_delta(0, 3, 2, np.zeros(0))
        with pytest.raises(ConfigurationError, match="out of range"):
            d.set_diagonal_delta(4, 1, 3, np.zeros(3))
        with pytest.raises(ConfigurationError, match="length"):
            d.set_diagonal_delta(0, 1, 3, np.zeros(5))
        with pytest.raises(ConfigurationError, match="non-negative"):
            d.set_diagonal_delta(0, 1, 2, np.asarray([-1.0]))

    @given(
        n=st.integers(2, 8),
        added=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_insert_remove_roundtrip(self, n, added, seed):
        rng = np.random.default_rng(seed)
        d = DissimilarityMatrix(n, rng.random(n * (n - 1) // 2))
        positions = sorted(
            rng.choice(n + added, size=added, replace=False).tolist()
        )
        grown = d.insert_objects(positions)
        assert grown.remove_objects(positions) == d


class TestCondensedTailIndices:
    def test_matches_tril_restriction(self):
        from repro.distance.dissimilarity import condensed_tail_indices

        for old, new in [(0, 5), (1, 4), (3, 3), (3, 7), (0, 1)]:
            i, j = np.tril_indices(new, -1)
            fresh = i >= old
            ti, tj = condensed_tail_indices(old, new)
            assert np.array_equal(ti, i[fresh])
            assert np.array_equal(tj, j[fresh])

    def test_cost_tracks_tail_not_square(self):
        """A small batch on a large site must allocate O(added * site),
        never O(site^2) -- the delta path's whole point."""
        from repro.distance.dissimilarity import condensed_tail_indices

        old, new = 200_000, 200_003
        i, j = condensed_tail_indices(old, new)
        assert i.size == j.size == old + (old + 1) + (old + 2)
        assert i[0] == old and j[0] == 0
        assert i[-1] == new - 1 and j[-1] == new - 2
