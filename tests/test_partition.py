"""Tests for horizontal partitioning and the global index."""

from __future__ import annotations

import pytest

from repro.data.matrix import AttributeSpec, DataMatrix
from repro.data.partition import (
    GlobalIndex,
    ObjectRef,
    horizontal_partition,
    merge_partitions,
)
from repro.exceptions import PartitionError
from repro.types import AttributeType

SCHEMA = [AttributeSpec("v", AttributeType.NUMERIC)]


def _matrix(n: int) -> DataMatrix:
    return DataMatrix(SCHEMA, [[i] for i in range(n)])


class TestObjectRef:
    def test_str_format(self):
        assert str(ObjectRef("A", 3)) == "A3"

    def test_ordering(self):
        assert ObjectRef("A", 1) < ObjectRef("A", 2) < ObjectRef("B", 0)


class TestGlobalIndex:
    def test_canonical_site_order(self):
        index = GlobalIndex({"C": 2, "A": 3, "B": 1})
        assert index.sites == ("A", "B", "C")
        assert index.total_objects == 6
        assert index.offset_of("A") == 0
        assert index.offset_of("B") == 3
        assert index.offset_of("C") == 4

    def test_positions_and_refs_roundtrip(self):
        index = GlobalIndex({"A": 2, "B": 2})
        for pos in range(4):
            ref = index.ref_at(pos)
            assert index.global_position(ref) == pos

    def test_refs_iteration(self):
        index = GlobalIndex({"A": 2, "B": 1})
        assert [str(r) for r in index.refs()] == ["A0", "A1", "B0"]

    def test_block_ranges(self):
        index = GlobalIndex({"A": 2, "B": 3})
        rows, cols = index.block("B", "A")
        assert list(rows) == [2, 3, 4]
        assert list(cols) == [0, 1]

    def test_out_of_range_errors(self):
        index = GlobalIndex({"A": 2})
        with pytest.raises(PartitionError):
            index.ref_at(2)
        with pytest.raises(PartitionError):
            index.global_position(ObjectRef("A", 2))
        with pytest.raises(PartitionError):
            index.size_of("Z")

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            GlobalIndex({})

    def test_negative_size_rejected(self):
        with pytest.raises(PartitionError):
            GlobalIndex({"A": -1})

    def test_equality(self):
        assert GlobalIndex({"A": 1, "B": 2}) == GlobalIndex({"B": 2, "A": 1})


class TestHorizontalPartition:
    def test_even_split(self):
        parts = horizontal_partition(_matrix(9), ["A", "B", "C"])
        assert [parts[s].num_rows for s in "ABC"] == [3, 3, 3]

    def test_order_preserved_without_seed(self):
        parts = horizontal_partition(_matrix(4), ["A", "B"])
        assert parts["A"].column(0) == [0, 1]
        assert parts["B"].column(0) == [2, 3]

    def test_proportional_split(self):
        parts = horizontal_partition(
            _matrix(10), ["A", "B"], proportions=[4, 1]
        )
        assert parts["A"].num_rows == 8
        assert parts["B"].num_rows == 2

    def test_every_site_gets_a_row(self):
        parts = horizontal_partition(
            _matrix(5), ["A", "B", "C"], proportions=[100, 1, 1]
        )
        assert all(p.num_rows >= 1 for p in parts.values())
        assert sum(p.num_rows for p in parts.values()) == 5

    def test_shuffle_deterministic(self):
        a = horizontal_partition(_matrix(20), ["A", "B"], seed=5)
        b = horizontal_partition(_matrix(20), ["A", "B"], seed=5)
        c = horizontal_partition(_matrix(20), ["A", "B"], seed=6)
        assert a["A"] == b["A"]
        assert a["A"] != c["A"]

    def test_shuffle_covers_all_rows(self):
        parts = horizontal_partition(_matrix(12), ["A", "B", "C"], seed=1)
        values = sorted(
            v for p in parts.values() for (v,) in p.rows
        )
        assert values == list(range(12))

    def test_too_few_rows_rejected(self):
        with pytest.raises(PartitionError):
            horizontal_partition(_matrix(1), ["A", "B"])

    def test_duplicate_sites_rejected(self):
        with pytest.raises(PartitionError):
            horizontal_partition(_matrix(4), ["A", "A"])

    def test_bad_proportions_rejected(self):
        with pytest.raises(PartitionError):
            horizontal_partition(_matrix(4), ["A", "B"], proportions=[1])
        with pytest.raises(PartitionError):
            horizontal_partition(_matrix(4), ["A", "B"], proportions=[1, 0])


class TestMergePartitions:
    def test_roundtrip(self):
        original = _matrix(7)
        parts = horizontal_partition(original, ["A", "B"])
        merged, index = merge_partitions(parts)
        assert merged == original
        assert index.total_objects == 7

    def test_canonical_order_regardless_of_dict_order(self):
        parts = horizontal_partition(_matrix(6), ["B", "A"])
        merged, index = merge_partitions({"B": parts["B"], "A": parts["A"]})
        assert index.sites == ("A", "B")
        # Site A's rows come first in the merged matrix.
        assert list(merged.rows[: parts["A"].num_rows]) == list(parts["A"].rows)

    def test_schema_mismatch_rejected(self):
        other = DataMatrix([AttributeSpec("w", AttributeType.NUMERIC)], [[1]])
        with pytest.raises(PartitionError):
            merge_partitions({"A": _matrix(2), "B": other})

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            merge_partitions({})
