"""Tests for the record linkage and outlier detection applications."""

from __future__ import annotations

import pytest

from repro.apps.linkage import private_record_linkage
from repro.apps.outliers import knn_outliers
from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.data.partition import GlobalIndex, ObjectRef
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ConfigurationError
from repro.types import AttributeType


def _linkage_setup():
    """Two sites holding noisy copies of the same three entities plus a
    distractor on each side; built through the real private pipeline."""
    schema = [AttributeSpec("income", AttributeType.NUMERIC, precision=0)]
    site_a = DataMatrix(schema, [[100], [500], [900], [380]])
    site_b = DataMatrix(schema, [[101], [498], [903], [710]])
    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=4),
        {"A": site_a, "B": site_b},
    )
    return session.final_matrix(), session.index


class TestRecordLinkage:
    @pytest.mark.parametrize("strategy", ["optimal", "greedy"])
    def test_links_true_pairs(self, strategy):
        matrix, index = _linkage_setup()
        matches = private_record_linkage(
            matrix, index, "A", "B", threshold=0.02, strategy=strategy
        )
        linked = {(m.left.local_id, m.right.local_id) for m in matches}
        assert linked == {(0, 0), (1, 1), (2, 2)}

    def test_one_to_one(self):
        matrix, index = _linkage_setup()
        matches = private_record_linkage(matrix, index, "A", "B", threshold=1.0)
        lefts = [m.left for m in matches]
        rights = [m.right for m in matches]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_threshold_zero_links_exact_duplicates_only(self):
        schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
        session = ClusteringSession(
            SessionConfig(num_clusters=2),
            {
                "A": DataMatrix(schema, [[5], [70]]),
                "B": DataMatrix(schema, [[5], [200]]),
            },
        )
        matches = private_record_linkage(
            session.final_matrix(), session.index, "A", "B", threshold=0.0
        )
        assert [(m.left.local_id, m.right.local_id) for m in matches] == [(0, 0)]

    def test_sorted_by_distance(self):
        matrix, index = _linkage_setup()
        matches = private_record_linkage(matrix, index, "A", "B", threshold=1.0)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_validation(self):
        matrix, index = _linkage_setup()
        with pytest.raises(ConfigurationError):
            private_record_linkage(matrix, index, "A", "A", threshold=0.1)
        with pytest.raises(ConfigurationError):
            private_record_linkage(matrix, index, "A", "B", threshold=-1)
        with pytest.raises(ConfigurationError):
            private_record_linkage(matrix, index, "A", "B", 0.1, strategy="magic")

    def test_optimal_beats_greedy_on_crossing_pairs(self):
        """A configuration where greedy's first pick forces a bad total."""
        index = GlobalIndex({"A": 2, "B": 2})
        matrix = DissimilarityMatrix.zeros(4)
        # A0-B0=0.10, A0-B1=0.11, A1-B0=0.12, A1-B1=0.50
        matrix[2, 0] = 0.10
        matrix[3, 0] = 0.11
        matrix[2, 1] = 0.12
        matrix[3, 1] = 0.50
        greedy = private_record_linkage(matrix, index, "A", "B", 0.2, "greedy")
        optimal = private_record_linkage(matrix, index, "A", "B", 0.2, "optimal")
        assert len(greedy) == 1  # greedy takes A0-B0, stranding A1 (0.50 > t)
        assert len(optimal) == 2  # optimal: A0-B1 + A1-B0, both under t


class TestOutliers:
    def _planted(self):
        """Nine clustered objects and one far-away outlier at B2."""
        schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
        session = ClusteringSession(
            SessionConfig(num_clusters=2, master_seed=5),
            {
                "A": DataMatrix(schema, [[10], [11], [12], [13], [14]]),
                "B": DataMatrix(schema, [[15], [16], [900], [12]]),
            },
        )
        return session.final_matrix(), session.index

    def test_planted_outlier_found_top_n(self):
        matrix, index = self._planted()
        report = knn_outliers(matrix, index, k=2, top_n=1)
        assert report.flagged == (ObjectRef("B", 2),)

    def test_planted_outlier_found_threshold(self):
        matrix, index = self._planted()
        report = knn_outliers(matrix, index, k=2, threshold=0.5)
        assert ObjectRef("B", 2) in report.flagged

    def test_scores_shape_and_order(self):
        matrix, index = self._planted()
        report = knn_outliers(matrix, index, k=3, top_n=2)
        assert len(report.scores) == index.total_objects
        outlier_pos = index.global_position(ObjectRef("B", 2))
        assert report.scores[outlier_pos] == max(report.scores)

    def test_flagged_sorted_by_score(self):
        matrix, index = self._planted()
        report = knn_outliers(matrix, index, k=2, top_n=3)
        scores = [report.scores[index.global_position(r)] for r in report.flagged]
        assert scores == sorted(scores, reverse=True)

    def test_validation(self):
        matrix, index = self._planted()
        with pytest.raises(ConfigurationError):
            knn_outliers(matrix, index, k=0, top_n=1)
        with pytest.raises(ConfigurationError):
            knn_outliers(matrix, index, k=20, top_n=1)
        with pytest.raises(ConfigurationError):
            knn_outliers(matrix, index, k=2)
        with pytest.raises(ConfigurationError):
            knn_outliers(matrix, index, k=2, top_n=1, threshold=0.5)
        with pytest.raises(ConfigurationError):
            knn_outliers(matrix, index, k=2, top_n=100)

    def test_top_n_zero(self):
        matrix, index = self._planted()
        assert knn_outliers(matrix, index, k=2, top_n=0).flagged == ()
