"""Tests for hierarchical categorical attributes (repro.ext.taxonomy)."""

from __future__ import annotations

import pytest

from repro.crypto.detenc import DeterministicEncryptor
from repro.data.partition import GlobalIndex
from repro.distance.local import local_dissimilarity
from repro.exceptions import ProtocolError, SchemaError
from repro.ext.taxonomy import Taxonomy, third_party_taxonomy_matrix

KEY = b"taxonomy-shared-key-0123456789ab"

#: A small product taxonomy:
#:   goods -> electronics -> {phones, laptops}; goods -> grocery -> fruit
PARENTS = {
    "goods": None,
    "electronics": "goods",
    "phones": "electronics",
    "laptops": "electronics",
    "grocery": "goods",
    "fruit": "grocery",
}


@pytest.fixture
def taxonomy():
    return Taxonomy(PARENTS)


class TestStructure:
    def test_paths(self, taxonomy):
        assert taxonomy.path("phones") == ("goods", "electronics", "phones")
        assert taxonomy.path("goods") == ("goods",)

    def test_depths(self, taxonomy):
        assert taxonomy.depth("goods") == 1
        assert taxonomy.depth("phones") == 3
        assert taxonomy.max_depth == 3

    def test_lca_depth(self, taxonomy):
        assert taxonomy.lca_depth("phones", "laptops") == 2  # electronics
        assert taxonomy.lca_depth("phones", "fruit") == 1  # goods
        assert taxonomy.lca_depth("phones", "phones") == 3

    def test_membership(self, taxonomy):
        assert "phones" in taxonomy
        assert "cars" not in taxonomy

    def test_unknown_node(self, taxonomy):
        with pytest.raises(SchemaError):
            taxonomy.path("cars")

    def test_unknown_parent_rejected(self):
        with pytest.raises(SchemaError):
            Taxonomy({"a": "ghost"})

    def test_cycle_rejected(self):
        with pytest.raises(SchemaError):
            Taxonomy({"a": "b", "b": "a"})

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Taxonomy({})


class TestMetric:
    def test_known_distances(self, taxonomy):
        assert taxonomy.distance("phones", "laptops") == 2
        assert taxonomy.distance("phones", "fruit") == 4
        assert taxonomy.distance("phones", "electronics") == 1
        assert taxonomy.distance("fruit", "fruit") == 0

    def test_metric_axioms(self, taxonomy):
        nodes = list(PARENTS)
        for a in nodes:
            for b in nodes:
                d = taxonomy.distance(a, b)
                assert d == taxonomy.distance(b, a)
                assert (d == 0) == (a == b)
                for c in nodes:
                    assert taxonomy.distance(a, c) <= d + taxonomy.distance(b, c)


class TestCiphertextProtocol:
    def test_ciphertext_distance_matches_plaintext(self, taxonomy):
        enc = DeterministicEncryptor(KEY)
        nodes = list(PARENTS)
        for a in nodes:
            for b in nodes:
                path_a = taxonomy.encrypt_value(enc, "cat", a)
                path_b = taxonomy.encrypt_value(enc, "cat", b)
                assert Taxonomy.distance_from_ciphertext_paths(
                    path_a, path_b
                ) == taxonomy.distance(a, b), (a, b)

    def test_same_name_different_depth_no_collision(self):
        """Positional prefix encoding keeps equal labels at different
        depths distinct."""
        tree = Taxonomy({"x": None, "mid": "x", "deep": "mid"})
        other = Taxonomy({"mid": None})
        enc = DeterministicEncryptor(KEY)
        a = tree.encrypt_value(enc, "cat", "mid")  # depth 2
        b = other.encrypt_value(enc, "cat", "mid")  # depth 1
        assert a[-1] != b[-1]

    def test_ciphertexts_hide_labels(self, taxonomy):
        enc = DeterministicEncryptor(KEY)
        for ciphertext in taxonomy.encrypt_value(enc, "cat", "phones"):
            assert b"phones" not in ciphertext
            assert b"electronics" not in ciphertext

    def test_global_matrix(self, taxonomy):
        enc = DeterministicEncryptor(KEY)
        columns = {
            "A": taxonomy.encrypt_column(enc, "cat", ["phones", "fruit"]),
            "B": taxonomy.encrypt_column(enc, "cat", ["laptops"]),
        }
        index = GlobalIndex({"A": 2, "B": 1})
        matrix = third_party_taxonomy_matrix(columns, index)
        reference = local_dissimilarity(
            ["phones", "fruit", "laptops"], taxonomy.distance
        )
        assert matrix.allclose(reference)

    def test_matrix_site_validation(self, taxonomy):
        enc = DeterministicEncryptor(KEY)
        columns = {"A": taxonomy.encrypt_column(enc, "cat", ["fruit"])}
        with pytest.raises(ProtocolError):
            third_party_taxonomy_matrix(columns, GlobalIndex({"A": 1, "B": 1}))
        with pytest.raises(ProtocolError):
            third_party_taxonomy_matrix(columns, GlobalIndex({"A": 2}))

    def test_communication_linear_in_depth(self, taxonomy):
        """Per-holder cost is O(n * depth) ciphertexts."""
        from repro.network.serialization import serialized_size

        enc = DeterministicEncryptor(KEY)
        shallow = serialized_size(taxonomy.encrypt_column(enc, "cat", ["goods"] * 10))
        deep = serialized_size(taxonomy.encrypt_column(enc, "cat", ["phones"] * 10))
        assert 2.5 < deep / shallow < 3.5  # depth 3 vs depth 1


class TestSessionIntegration:
    """Taxonomy as a first-class schema member in a real session."""

    def _partitions(self, taxonomy):
        from repro.data.matrix import AttributeSpec, DataMatrix
        from repro.types import AttributeType

        spec = AttributeSpec(
            "category", AttributeType.CATEGORICAL, taxonomy=taxonomy
        )
        return {
            "A": DataMatrix([spec], [["phones"], ["fruit"], ["laptops"]]),
            "B": DataMatrix([spec], [["electronics"], ["grocery"]]),
        }

    def test_session_exactness(self, taxonomy):
        from repro.baselines.centralized import centralized_pipeline
        from repro.core.config import SessionConfig
        from repro.core.session import ClusteringSession

        partitions = self._partitions(taxonomy)
        session = ClusteringSession(SessionConfig(num_clusters=2), partitions)
        central, _, _, _ = centralized_pipeline(partitions)
        assert session.final_matrix().allclose(central, atol=0.0)

    def test_schema_validates_taxonomy_values(self, taxonomy):
        from repro.data.matrix import AttributeSpec, DataMatrix
        from repro.types import AttributeType

        spec = AttributeSpec("c", AttributeType.CATEGORICAL, taxonomy=taxonomy)
        with pytest.raises(SchemaError):
            DataMatrix([spec], [["not-a-node"]])

    def test_taxonomy_on_numeric_rejected(self, taxonomy):
        from repro.data.matrix import AttributeSpec
        from repro.types import AttributeType

        with pytest.raises(SchemaError):
            AttributeSpec("c", AttributeType.NUMERIC, taxonomy=taxonomy)

    def test_mixed_schema_with_taxonomy(self, taxonomy):
        """Taxonomy rides alongside the paper's three native types."""
        from repro.baselines.centralized import centralized_pipeline
        from repro.core.config import SessionConfig
        from repro.core.session import ClusteringSession
        from repro.data.matrix import AttributeSpec, DataMatrix
        from repro.types import AttributeType

        schema = [
            AttributeSpec("price", AttributeType.NUMERIC, precision=0),
            AttributeSpec("category", AttributeType.CATEGORICAL, taxonomy=taxonomy),
            AttributeSpec("origin", AttributeType.CATEGORICAL),
        ]
        partitions = {
            "A": DataMatrix(schema, [[700, "phones", "cn"], [3, "fruit", "tr"]]),
            "B": DataMatrix(schema, [[1400, "laptops", "cn"], [5, "grocery", "tr"]]),
        }
        session = ClusteringSession(SessionConfig(num_clusters=2), partitions)
        central, _, _, _ = centralized_pipeline(partitions)
        assert session.final_matrix().allclose(central, atol=0.0)
