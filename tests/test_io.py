"""Tests for artefact persistence (repro.io)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.linkage import agglomerative
from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ConfigurationError
from repro.io import (
    load_dendrogram,
    load_matrix,
    load_result,
    save_dendrogram,
    save_matrix,
    save_result,
)


@pytest.fixture
def matrix():
    rng = np.random.default_rng(1)
    points = rng.normal(size=(9, 2))
    square = np.linalg.norm(points[:, None] - points[None, :], axis=2)
    return DissimilarityMatrix.from_square(square)


class TestMatrixIO:
    def test_roundtrip_exact(self, matrix, tmp_path):
        path = tmp_path / "matrix.npz"
        save_matrix(matrix, path)
        assert load_matrix(path) == matrix  # bit-for-bit

    def test_single_object(self, tmp_path):
        path = tmp_path / "one.npz"
        save_matrix(DissimilarityMatrix.zeros(1), path)
        assert load_matrix(path).num_objects == 1

    def test_format_marker_checked(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, format=np.asarray("something-else"), x=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_matrix(path)


class TestDendrogramIO:
    def test_roundtrip_exact(self, matrix, tmp_path):
        dendrogram = agglomerative(matrix, "average")
        path = tmp_path / "tree.json"
        save_dendrogram(dendrogram, path)
        loaded = load_dendrogram(path)
        assert loaded.num_leaves == dendrogram.num_leaves
        assert loaded.merges == dendrogram.merges  # heights exact via repr

    def test_cuts_survive_roundtrip(self, matrix, tmp_path):
        dendrogram = agglomerative(matrix, "complete")
        path = tmp_path / "tree.json"
        save_dendrogram(dendrogram, path)
        loaded = load_dendrogram(path)
        for k in (2, 3, 4):
            assert loaded.cut_at_k(k) == dendrogram.cut_at_k(k)

    def test_format_marker_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ConfigurationError):
            load_dendrogram(path)


class TestResultIO:
    def test_roundtrip(self, mixed_partitions, tmp_path):
        session = ClusteringSession(SessionConfig(num_clusters=2), mixed_partitions)
        result = session.run()
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.to_payload() == result.to_payload()
        assert loaded.format_figure13() == result.format_figure13()

    def test_format_marker_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope", "payload": {}}')
        with pytest.raises(ConfigurationError):
            load_result(path)
