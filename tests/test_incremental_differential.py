"""Differential equivalence of incremental sessions vs full rebuilds.

The incremental subsystem's contract: after *any* sequence of arrivals
and retirements, the service's state is **bit-identical** to a
from-scratch :class:`ClusteringSession` over the current union --
per-attribute matrices and merged matrix entry-exact, dendrogram
merge-for-merge (heights included), medoids identical.

Two layers enforce it:

* a stateful Hypothesis :class:`RuleBasedStateMachine` driving random
  interleavings of per-site appends, removals and re-clusterings, with
  the matrix equality checked as an invariant after every step, and
* deterministic scenarios covering every protocol mode (schedules,
  per-pair numeric masking, fresh string masks), multi-site batches,
  shrink-then-regrow label uniqueness, and the service's error paths.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.apps.service import ClusteringService
from repro.apps.sessions import SessionBatch
from repro.clustering.kmedoids import k_medoids
from repro.clustering.linkage import agglomerative
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.exceptions import ConfigurationError
from repro.types import AttributeType, LinkageMethod

SCHEMA = [
    AttributeSpec("age", AttributeType.NUMERIC, precision=0),
    AttributeSpec("score", AttributeType.NUMERIC, precision=2),
    AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    AttributeSpec("city", AttributeType.CATEGORICAL),
]
SITES = ("A", "B")
CONFIG = SessionConfig(num_clusters=2, master_seed=29)

#: Keep rebuild costs bounded: appends stop once the union reaches this.
MAX_OBJECTS = 22

row_values = st.tuples(
    st.integers(0, 120),
    st.integers(0, 4000).map(lambda v: v / 100.0),
    st.text(alphabet="ACGT", min_size=0, max_size=6),
    st.sampled_from(["istanbul", "ankara", "izmir"]),
).map(list)


def _assert_equivalent(service: ClusteringService, rebuild: ClusteringSession) -> None:
    """Full bit-level comparison: matrices, dendrogram, medoids."""
    assert service.matrix() == rebuild.final_matrix()
    for spec in SCHEMA:
        incremental = service.session.third_party.attribute_matrix(spec.name)
        scratch = rebuild.third_party.attribute_matrix(spec.name)
        assert incremental == scratch, f"attribute {spec.name!r} diverged"
    dendro_inc = agglomerative(service.matrix(), LinkageMethod.AVERAGE)
    dendro_full = agglomerative(rebuild.final_matrix(), LinkageMethod.AVERAGE)
    assert dendro_inc.merges == dendro_full.merges
    k = min(2, service.total_objects())
    pam_inc = k_medoids(service.matrix(), k)
    pam_full = k_medoids(rebuild.final_matrix(), k)
    assert pam_inc.medoids == pam_full.medoids
    assert pam_inc.labels == pam_full.labels


class IncrementalSessionMachine(RuleBasedStateMachine):
    """Random append/remove/recluster interleavings across two sites."""

    def __init__(self) -> None:
        super().__init__()
        self.batch = SessionBatch(CONFIG, list(SITES))
        self.service: ClusteringService | None = None

    @initialize(
        rows_a=st.lists(row_values, min_size=1, max_size=3),
        rows_b=st.lists(row_values, min_size=1, max_size=3),
    )
    def start(self, rows_a, rows_b):
        self.service = self.batch.service(
            {"A": DataMatrix(SCHEMA, rows_a), "B": DataMatrix(SCHEMA, rows_b)}
        )

    def _rebuild(self) -> ClusteringSession:
        # Same cached secrets a standalone rebuild with this master seed
        # would derive, so the comparison is equivalence, not setup noise.
        return self.batch.session(self.service.partitions())

    @precondition(lambda self: self.service is not None)
    @rule(
        site=st.sampled_from(SITES),
        rows=st.lists(row_values, min_size=1, max_size=2),
    )
    def append(self, site, rows):
        if self.service.total_objects() + len(rows) > MAX_OBJECTS:
            return
        self.service.ingest({site: DataMatrix(SCHEMA, rows)}, recluster=False)

    @precondition(lambda self: self.service is not None)
    @rule(data=st.data())
    def append_everywhere(self, data):
        if self.service.total_objects() + len(SITES) > MAX_OBJECTS:
            return
        arrivals = {
            site: DataMatrix(SCHEMA, [data.draw(row_values, label=f"row@{site}")])
            for site in SITES
        }
        self.service.ingest(arrivals, recluster=False)

    @precondition(lambda self: self.service is not None)
    @rule(data=st.data())
    def remove(self, data):
        index = self.service.index
        candidates = [s for s in SITES if index.size_of(s) > 1]
        if not candidates:
            return
        site = data.draw(st.sampled_from(candidates), label="site")
        local = data.draw(
            st.integers(0, index.size_of(site) - 1), label="local_id"
        )
        self.service.retire({site: [local]}, recluster=False)

    @precondition(lambda self: self.service is not None)
    @rule()
    def recluster(self):
        published = self.service.recluster()
        rebuilt = self._rebuild().run()
        assert published.to_payload() == rebuilt.to_payload()

    @invariant()
    def incremental_state_equals_full_rebuild(self):
        if self.service is None:
            return
        _assert_equivalent(self.service, self._rebuild())


IncrementalSessionMachine.TestCase.settings = settings(
    max_examples=6, stateful_step_count=7, deadline=None
)
TestIncrementalSessionMachine = IncrementalSessionMachine.TestCase


SUITES = {
    "sequential-batch": ProtocolSuiteConfig(),
    "interleaved-batch": ProtocolSuiteConfig(construction_schedule="interleaved"),
    "sequential-perpair-fresh": ProtocolSuiteConfig(
        batch_numeric=False, fresh_string_masks=True
    ),
    "interleaved-perpair": ProtocolSuiteConfig(
        construction_schedule="interleaved", batch_numeric=False
    ),
    "parallel-batch": ProtocolSuiteConfig(construction_schedule="parallel"),
    "parallel-perpair-fresh": ProtocolSuiteConfig(
        construction_schedule="parallel",
        batch_numeric=False,
        fresh_string_masks=True,
    ),
}


def _partitions():
    return {
        "A": DataMatrix(
            SCHEMA,
            [
                [34, 1.25, "ACGTAC", "istanbul"],
                [71, 9.5, "TTTTGG", "ankara"],
                [36, 1.5, "ACGTTC", "istanbul"],
            ],
        ),
        "B": DataMatrix(
            SCHEMA,
            [
                [38, 1.0, "ACGAAC", "izmir"],
                [67, 9.12, "TTCTGG", "ankara"],
            ],
        ),
    }


class TestDeterministicScenarios:
    @pytest.mark.parametrize("name", sorted(SUITES))
    def test_mixed_history_every_protocol_mode(self, name):
        config = SessionConfig(num_clusters=2, master_seed=41, suite=SUITES[name])
        batch = SessionBatch(config, ["A", "B"])
        service = batch.service(_partitions())
        service.ingest(
            {
                "A": DataMatrix(SCHEMA, [[50, 5.0, "ACGTGG", "bursa"]]),
                "B": DataMatrix(
                    SCHEMA,
                    [[41, 2.25, "ACGTAT", "istanbul"], [70, 9.25, "TT", "ankara"]],
                ),
            },
            recluster=False,
        )
        service.retire({"A": [1], "B": [0, 2]}, recluster=False)
        service.ingest(
            {"A": DataMatrix(SCHEMA, [[33, 1.0, "AGGTAC", "bursa"]])},
            recluster=False,
        )
        _assert_equivalent(service, batch.session(service.partitions()))

    def test_shrink_then_regrow_same_local_ids(self):
        """A site that retires its tail and regrows over the same local id
        range must still match a rebuild -- the epoch-scoped labels keep
        the second growth's mask streams distinct from the first's."""
        config = SessionConfig(num_clusters=2, master_seed=13)
        batch = SessionBatch(config, ["A", "B"])
        service = batch.service(_partitions())
        arrivals = DataMatrix(
            SCHEMA, [[90, 3.5, "ACAC", "izmir"], [12, 0.25, "GGGG", "bursa"]]
        )
        service.ingest({"A": arrivals}, recluster=False)
        service.retire({"A": [3, 4]}, recluster=False)
        different = DataMatrix(
            SCHEMA, [[55, 7.75, "TTTT", "ankara"], [61, 8.0, "TATA", "izmir"]]
        )
        service.ingest({"A": different}, recluster=False)
        _assert_equivalent(service, batch.session(service.partitions()))

    def test_bulk_load_then_single_recluster(self):
        config = SessionConfig(num_clusters=3, master_seed=3)
        service = ClusteringService(config, _partitions())
        for step in range(3):
            service.ingest(
                {
                    "B": DataMatrix(
                        SCHEMA, [[step * 10, step / 2.0, "ACGT", "izmir"]]
                    )
                },
                recluster=False,
            )
        published = service.recluster()
        rebuilt = ClusteringSession(config, service.partitions()).run()
        assert published.to_payload() == rebuilt.to_payload()

    def test_delta_runs_touch_only_new_pair_steps(self):
        """The realized delta schedule contains no full-construction
        steps: one local tail per grown site and at most two sub-column
        runs per holder pair, per attribute."""
        config = SessionConfig(num_clusters=2, master_seed=19)
        service = ClusteringService(config, _partitions())
        service.ingest(
            {"A": DataMatrix(SCHEMA, [[44, 4.0, "ACGT", "izmir"]])},
            recluster=False,
        )
        trace = service.delta_trace
        assert trace, "delta construction left no trace"
        assert all("@1" in step for step in trace)
        # Site A grew, so every non-categorical attribute ships exactly
        # one local tail and runs exactly one sub-column round: the grown
        # site responds with its arrivals, so B initiates the "grow" run.
        for attr in ("age", "score", "dna"):
            attr_steps = [s for s in trace if s.startswith(f"{attr}:")]
            assert f"{attr}:send_local_delta[A]@1" in attr_steps
            assert not any("send_local_delta[B]" in s for s in attr_steps)
            assert (
                sum(1 for s in attr_steps if s.startswith(f"{attr}:initiate[")) == 1
            )
            assert f"{attr}:initiate[B->A|grow]@1" in attr_steps
        assert "city:send_encrypted_delta[A]@1" in trace
        assert "city:finalize@1" in trace

    def test_interleaved_delta_matches_sequential_delta(self):
        results = {}
        for schedule in ("sequential", "interleaved", "parallel"):
            config = SessionConfig(
                num_clusters=2,
                master_seed=23,
                suite=ProtocolSuiteConfig(construction_schedule=schedule),
            )
            service = ClusteringService(config, _partitions())
            service.ingest(
                {
                    "A": DataMatrix(SCHEMA, [[81, 6.5, "ACCA", "ankara"]]),
                    "B": DataMatrix(SCHEMA, [[18, 0.5, "GTGT", "bursa"]]),
                },
                recluster=False,
            )
            results[schedule] = service
        for schedule in ("interleaved", "parallel"):
            assert results["sequential"].matrix() == results[schedule].matrix()
            if not os.environ.get("REPRO_CHAOS_PRESET"):
                # Chaos retransmits make wire bytes schedule-dependent;
                # the matrices above stay pinned regardless.
                assert (
                    results["sequential"].total_bytes()
                    == results[schedule].total_bytes()
                )


class TestServiceErrorPaths:
    def test_ingest_unknown_site(self):
        service = ClusteringService(CONFIG, _partitions())
        with pytest.raises(ConfigurationError, match="unknown site"):
            service.ingest({"Z": DataMatrix(SCHEMA, [[1, 1.0, "A", "izmir"]])})

    def test_ingest_schema_mismatch(self):
        service = ClusteringService(CONFIG, _partitions())
        other = [AttributeSpec("age", AttributeType.NUMERIC, precision=0)]
        with pytest.raises(ConfigurationError, match="schema"):
            service.ingest({"A": DataMatrix(other, [[1]])})

    def test_ingest_requires_rows(self):
        service = ClusteringService(CONFIG, _partitions())
        with pytest.raises(ConfigurationError, match="at least one"):
            service.ingest({"A": DataMatrix(SCHEMA, [])})
        with pytest.raises(ConfigurationError, match="DataMatrix"):
            service.ingest({"A": [[1, 1.0, "A", "izmir"]]})

    def test_retire_guards(self):
        service = ClusteringService(CONFIG, _partitions())
        with pytest.raises(ConfigurationError, match="unknown site"):
            service.retire({"Z": [0]})
        with pytest.raises(ConfigurationError, match="out of range"):
            service.retire({"B": [5]})
        with pytest.raises(ConfigurationError, match="every record"):
            service.retire({"B": [0, 1]})
        with pytest.raises(ConfigurationError, match="at least one"):
            service.retire({"A": []})

    def test_failed_mutation_leaves_state_reusable(self):
        service = ClusteringService(CONFIG, _partitions())
        before = service.matrix()
        with pytest.raises(ConfigurationError):
            service.ingest({"Z": DataMatrix(SCHEMA, [[1, 1.0, "A", "izmir"]])})
        with pytest.raises(ConfigurationError):
            service.retire({"B": [0, 1]})
        assert service.matrix() == before
        service.ingest({"A": DataMatrix(SCHEMA, [[9, 0.5, "AC", "izmir"]])})
        _assert_equivalent(
            service, ClusteringSession(CONFIG, service.partitions())
        )


class TestStorageBackendSweep:
    """The mixed ingest/retire history, re-run per storage backend.

    Tiny blocks and a tiny cache force the sharded backends through
    their eviction/writeback machinery even at test scale; the float64
    backends must agree bit for bit with the default run, the float32
    backend within one rounding per stored value.
    """

    @staticmethod
    def _suite(backend: str) -> ProtocolSuiteConfig:
        return ProtocolSuiteConfig(
            store_backend=backend, store_block_entries=16, store_cache_bytes=512
        )

    @staticmethod
    def _mixed_history(suite: ProtocolSuiteConfig):
        config = SessionConfig(num_clusters=2, master_seed=41, suite=suite)
        batch = SessionBatch(config, ["A", "B"])
        service = batch.service(_partitions())
        service.ingest(
            {
                "A": DataMatrix(SCHEMA, [[50, 5.0, "ACGTGG", "bursa"]]),
                "B": DataMatrix(
                    SCHEMA,
                    [[41, 2.25, "ACGTAT", "istanbul"], [70, 9.25, "TT", "ankara"]],
                ),
            },
            recluster=False,
        )
        service.retire({"A": [1], "B": [0, 2]}, recluster=False)
        service.ingest(
            {"A": DataMatrix(SCHEMA, [[33, 1.0, "AGGTAC", "bursa"]])},
            recluster=False,
        )
        return service, batch

    @pytest.mark.parametrize("backend", ["memory", "float32", "memmap"])
    def test_incremental_matches_rebuild_on_backend(self, backend):
        service, batch = self._mixed_history(self._suite(backend))
        # The configured backend actually reached the third party.
        assert service.matrix().store_kind == backend
        _assert_equivalent(service, batch.session(service.partitions()))

    def test_memmap_is_bit_identical_to_default(self):
        """The float64 memmap backend changes nothing observable: final
        matrix, dendrogram, medoids, and the published payload are all
        bit-identical to the in-memory default."""
        # Explicitly in-memory: a REPRO_STORE_BACKEND env override (the
        # CI storage matrix) must not move the reference side.
        default_service, _ = self._mixed_history(self._suite("memory"))
        memmap_service, _ = self._mixed_history(self._suite("memmap"))
        assert memmap_service.matrix() == default_service.matrix()
        dendro_mm = agglomerative(memmap_service.matrix(), LinkageMethod.AVERAGE)
        dendro_mem = agglomerative(default_service.matrix(), LinkageMethod.AVERAGE)
        assert dendro_mm.merges == dendro_mem.merges
        pam_mm = k_medoids(memmap_service.matrix(), 2)
        pam_mem = k_medoids(default_service.matrix(), 2)
        assert (pam_mm.medoids, pam_mm.labels) == (pam_mem.medoids, pam_mem.labels)
        assert (
            memmap_service.recluster().to_payload()
            == default_service.recluster().to_payload()
        )

    def test_float32_tracks_default_within_rounding(self):
        default_service, _ = self._mixed_history(self._suite("memory"))
        f32_service, _ = self._mixed_history(self._suite("float32"))
        assert f32_service.matrix().allclose(default_service.matrix(), atol=1e-5)

    def test_environment_default_reaches_sessions(self, monkeypatch):
        """With no explicit ``store_backend``, the session-owned matrices
        follow ``REPRO_STORE_BACKEND`` -- the hook the CI storage matrix
        re-points whole runs through -- and stay bit-identical."""
        from repro.distance.store import ENV_BACKEND

        monkeypatch.setenv(ENV_BACKEND, "memmap")
        env_service, _ = self._mixed_history(ProtocolSuiteConfig())
        assert env_service.matrix().store_kind == "memmap"
        monkeypatch.delenv(ENV_BACKEND)
        default_service, _ = self._mixed_history(ProtocolSuiteConfig())
        assert default_service.matrix().store_kind == "memory"
        assert env_service.matrix() == default_service.matrix()
