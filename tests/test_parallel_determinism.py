"""Determinism of the parallel execution engine.

The headline contract of the ``"parallel"`` construction schedule: for
**any** worker count, every published artifact -- per-attribute
matrices, merged matrix, dendrogram, medoids, result payloads, byte
counts -- is bit-identical to the sequential policy's.  The mechanisms
(PRNG isolation, delivery lanes, disjoint block writes) are documented
in :mod:`repro.core.scheduler`; these tests hold the whole stack to the
guarantee:

* a deterministic sweep and a Hypothesis property test across
  ``sequential`` / ``interleaved`` / ``parallel(w=1,2,4)``,
* lane-receive semantics of the concurrency-safe network (exact pops,
  actionable mis-scheduling reports -- the queue snapshot satellites),
* a multi-threaded accounting hammer: byte/message counters and
  eavesdropper captures stay exact under concurrent sends, and
* :class:`ClusteringService` ingest/retire epochs under the parallel
  policy, differentially equivalent to from-scratch rebuilds.
"""

from __future__ import annotations

import os
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.service import ClusteringService
from repro.clustering.kmedoids import k_medoids
from repro.clustering.linkage import agglomerative
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.exceptions import ChannelError, ProtocolError
from repro.network.channel import Eavesdropper
from repro.network.simulator import Network
from repro.types import AttributeType, LinkageMethod

SCHEMA = [
    AttributeSpec("age", AttributeType.NUMERIC, precision=0),
    AttributeSpec("score", AttributeType.NUMERIC, precision=2),
    AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    AttributeSpec("city", AttributeType.CATEGORICAL),
]

#: Every policy/worker combination the determinism contract covers.  CI's
#: smoke matrix can push an extra worker count in via the environment.
POLICIES: list[tuple[str, int]] = [
    ("sequential", 1),
    ("interleaved", 1),
    ("parallel", 1),
    ("parallel", 2),
    ("parallel", 4),
]
_smoke = os.environ.get("PARALLEL_SMOKE_WORKERS")
if _smoke:
    POLICIES.append(("parallel", int(_smoke)))


def _config(policy: str, workers: int, master_seed: int = 17) -> SessionConfig:
    return SessionConfig(
        num_clusters=2,
        master_seed=master_seed,
        max_workers=workers,
        suite=ProtocolSuiteConfig(construction_schedule=policy),
    )


def _partitions(rows_a, rows_b, rows_c=None):
    partitions = {
        "A": DataMatrix(SCHEMA, rows_a),
        "B": DataMatrix(SCHEMA, rows_b),
    }
    if rows_c is not None:
        partitions["C"] = DataMatrix(SCHEMA, rows_c)
    return partitions


def _fingerprint(session: ClusteringSession, result) -> dict:
    """Everything the determinism contract pins, in comparable form."""
    merged = session.final_matrix()
    dendrogram = agglomerative(merged, LinkageMethod.AVERAGE)
    pam = k_medoids(merged, 2)
    fingerprint = {
        "result": result.to_payload(),
        "merged": merged.condensed.tobytes(),
        "attributes": {
            spec.name: session.third_party.attribute_matrix(spec.name)
            .condensed.tobytes()
            for spec in SCHEMA
        },
        "dendrogram": dendrogram.merges,
        "medoids": (pam.medoids, pam.labels),
    }
    if not os.environ.get("REPRO_CHAOS_PRESET"):
        # Chaos runs retransmit, and how many frames each schedule has
        # in flight when a fault hits differs per policy -- wire-byte
        # totals are legitimately schedule-dependent there.  Results
        # above stay pinned bit-identical regardless.
        fingerprint["total_bytes"] = session.total_bytes()
        fingerprint["bytes_by_tag"] = session.network.bytes_by_tag()
    return fingerprint


class TestPolicySweep:
    def test_all_policies_bit_identical(self):
        rows_a = [
            [34, 1.25, "ACGTAC", "istanbul"],
            [71, 9.5, "TTTTGG", "ankara"],
            [36, 1.5, "ACGTTC", "istanbul"],
            [52, 4.75, "AC", "bursa"],
        ]
        rows_b = [
            [38, 1.0, "ACGAAC", "izmir"],
            [67, 9.12, "TTCTGG", "ankara"],
            [44, 3.5, "GGGTAC", "izmir"],
        ]
        rows_c = [
            [29, 0.25, "ACACAC", "istanbul"],
            [80, 9.9, "TTTT", "bursa"],
        ]
        fingerprints = {}
        for policy, workers in POLICIES:
            session = ClusteringSession(
                _config(policy, workers), _partitions(rows_a, rows_b, rows_c)
            )
            fingerprints[(policy, workers)] = _fingerprint(session, session.run())
        reference = fingerprints[("sequential", 1)]
        for key, fingerprint in fingerprints.items():
            assert fingerprint == reference, f"{key} diverged from sequential"

    def test_parallel_trace_covers_every_step(self):
        """The executor runs each step exactly once (trace is completion
        order, so only the *set* is pinned)."""
        sequential = ClusteringSession(
            _config("sequential", 1),
            _partitions([[1, 1.0, "AC", "x"]] * 2, [[2, 2.0, "GT", "y"]] * 2),
        )
        sequential.execute_protocol()
        parallel = ClusteringSession(
            _config("parallel", 4),
            _partitions([[1, 1.0, "AC", "x"]] * 2, [[2, 2.0, "GT", "y"]] * 2),
        )
        parallel.execute_protocol()
        assert sorted(parallel.construction_trace) == sorted(
            sequential.construction_trace
        )
        assert len(parallel.construction_trace) == len(
            set(parallel.construction_trace)
        )

    def test_parallel_step_failure_propagates(self):
        """A raising step aborts the run with the original exception."""
        from repro.core.scheduler import ConstructionScheduler, Step

        session = ClusteringSession(
            _config("parallel", 2),
            _partitions([[1, 1.0, "AC", "x"]] * 2, [[2, 2.0, "GT", "y"]] * 2),
        )
        scheduler = ConstructionScheduler(
            session.holders, session.third_party, policy="parallel", max_workers=2
        )

        def boom() -> None:
            raise ProtocolError("injected step failure")

        scheduler._steps.append(Step(name="boom", run=boom, order=(0,)))
        with pytest.raises(ProtocolError, match="injected step failure"):
            scheduler.run()

    def test_parallel_unknown_dependency_rejected(self):
        from repro.core.scheduler import ConstructionScheduler, Step

        session = ClusteringSession(
            _config("parallel", 2),
            _partitions([[1, 1.0, "AC", "x"]] * 2, [[2, 2.0, "GT", "y"]] * 2),
        )
        scheduler = ConstructionScheduler(
            session.holders, session.third_party, policy="parallel", max_workers=2
        )
        scheduler._steps.append(
            Step(name="orphan", run=lambda: None, deps=("missing",), order=(0,))
        )
        with pytest.raises(ProtocolError, match="unknown steps"):
            scheduler.run()


row_values = st.tuples(
    st.integers(0, 120),
    st.integers(0, 4000).map(lambda v: v / 100.0),
    st.text(alphabet="ACGT", min_size=0, max_size=5),
    st.sampled_from(["istanbul", "ankara", "izmir"]),
).map(list)


class TestPolicyProperty:
    @given(
        rows_a=st.lists(row_values, min_size=2, max_size=4),
        rows_b=st.lists(row_values, min_size=2, max_size=4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_sessions_agree_across_policies(self, rows_a, rows_b, seed):
        fingerprints = []
        for policy, workers in POLICIES:
            session = ClusteringSession(
                _config(policy, workers, master_seed=seed),
                _partitions(rows_a, rows_b),
            )
            fingerprints.append(_fingerprint(session, session.run()))
        for fingerprint in fingerprints[1:]:
            assert fingerprint == fingerprints[0]


class TestLaneReceives:
    def _net(self) -> Network:
        net = Network()
        for name in ("A", "B", "TP"):
            net.add_party(name)
        net.connect("A", "TP", secure=False)
        net.connect("B", "TP", secure=False)
        return net

    def test_lane_receive_skips_other_lanes(self):
        """A lane pop takes its run's message even when other lanes'
        messages arrived first -- the property queue-head gating could
        never give a concurrent schedule."""
        net = self._net()
        net.send("A", "TP", "local_matrix", {"attr": "age"}, tag="numeric/age")
        net.send("B", "TP", "comparison_matrix", {"attr": "dna"}, tag="alnum/dna")
        net.send("A", "TP", "comparison_matrix", {"attr": "age"}, tag="numeric/age")
        message = net.receive(
            "TP", kind="comparison_matrix", sender="A", tag="numeric/age"
        )
        assert message.payload == {"attr": "age"}
        # Legacy pops still drain in global FIFO order.
        assert net.receive("TP").kind == "local_matrix"
        assert net.receive("TP").sender == "B"
        net.assert_drained()

    def test_lane_receive_is_fifo_within_lane(self):
        net = self._net()
        net.send("A", "TP", "k", 1, tag="t")
        net.send("A", "TP", "k", 2, tag="t")
        assert net.receive("TP", kind="k", sender="A", tag="t").payload == 1
        assert net.receive("TP", kind="k", sender="A", tag="t").payload == 2

    def test_lane_receive_requires_kind_and_sender(self):
        net = self._net()
        net.send("A", "TP", "k", 1, tag="t")
        with pytest.raises(ChannelError, match="requires kind and sender"):
            net.receive("TP", tag="t")

    def test_empty_lane_reports_queue_snapshot(self):
        net = self._net()
        net.send("A", "TP", "local_matrix", 1, tag="numeric/age")
        net.send("B", "TP", "ccm_matrices", 2, tag="alnum/dna")
        with pytest.raises(ProtocolError) as excinfo:
            net.receive("TP", kind="comparison_matrix", sender="A", tag="numeric/age")
        report = str(excinfo.value)
        assert "no pending 'comparison_matrix' from 'A'" in report
        assert "local_matrix<-A [numeric/age]" in report
        assert "ccm_matrices<-B [alnum/dna]" in report

    def test_head_mismatch_reports_queue_snapshot(self):
        """The deadlock-diagnosis satellite: a mis-scheduled receive names
        the whole queue, not just the head it tripped on."""
        net = self._net()
        net.send("A", "TP", "local_matrix", 1, tag="numeric/age")
        net.send("B", "TP", "ccm_matrices", 2, tag="alnum/dna")
        net.send("A", "TP", "weights", 3)
        with pytest.raises(ProtocolError) as excinfo:
            net.receive("TP", kind="comparison_matrix")
        report = str(excinfo.value)
        assert "expected kind 'comparison_matrix'" in report
        assert "got 'local_matrix' from 'A'" in report
        assert "ccm_matrices<-B [alnum/dna]" in report
        assert "weights<-A" in report

    def test_snapshot_truncates_long_queues(self):
        net = self._net()
        for i in range(20):
            net.send("A", "TP", f"k{i}", i, tag="t")
        with pytest.raises(ProtocolError) as excinfo:
            net.receive("TP", kind="nope")
        report = str(excinfo.value)
        assert "+7 more" in report  # 19 left after the popped head, 12 shown

    def test_sender_mismatch_still_raises(self):
        net = self._net()
        net.send("B", "TP", "k", 1)
        with pytest.raises(ProtocolError, match="expected sender 'A'"):
            net.receive("TP", kind="k", sender="A")

    def test_negative_latency_rejected(self):
        with pytest.raises(ChannelError):
            Network(latency=-0.1)

    def test_unknown_recipient_rejected_typed(self):
        net = self._net()
        with pytest.raises(ChannelError, match="unknown party"):
            net.receive("ghost")
        with pytest.raises(ChannelError, match="unknown party"):
            net.pending("ghost")
        with pytest.raises(ChannelError, match="unknown party"):
            net.peek("ghost")


class TestAccountingHammer:
    def test_concurrent_sends_account_exactly(self):
        """The atomicity satellite: many threads hammering one network
        must lose no byte, message or tapped frame."""
        net = Network()
        for name in ("A", "B", "TP"):
            net.add_party(name)
        net.connect("A", "B", secure=False)
        net.connect("A", "TP", secure=False)
        net.connect("B", "TP", secure=False)
        tap = Eavesdropper("mallory")
        net.attach_tap("A", "TP", tap)
        net.attach_tap("B", "TP", tap)

        sends_per_thread = 200
        payload = [7] * 16
        lanes = [("A", "B", "x"), ("A", "TP", "y"), ("B", "TP", "z"), ("A", "TP", "w")]

        def hammer(sender: str, recipient: str, tag: str) -> None:
            for i in range(sends_per_thread):
                net.send(sender, recipient, "hammer", payload, tag=tag)

        threads = [
            threading.Thread(target=hammer, args=lane) for lane in lanes for _ in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        per_lane = 2 * sends_per_thread
        one_wire = net.channel("A", "B").stats("A", "B").wire_bytes // per_lane
        assert net.messages_sent_by("A") == 3 * per_lane
        assert net.messages_sent_by("B") == per_lane
        assert net.total_bytes() == 4 * per_lane * one_wire
        assert net.bytes_by_tag() == {
            "x": per_lane * one_wire,
            "y": per_lane * one_wire,
            "z": per_lane * one_wire,
            "w": per_lane * one_wire,
        }
        # The tap saw exactly the frames of its two links, bytes intact.
        assert len(tap.frames) == 3 * per_lane
        assert all(f.wire for f in tap.frames)
        assert net.pending("B") == per_lane
        assert net.pending("TP") == 3 * per_lane
        # Lane receives drain concurrently without loss or duplication.
        received: list[int] = []

        def drain(recipient: str, sender: str, tag: str) -> None:
            count = 0
            for _ in range(per_lane):
                message = net.receive(recipient, kind="hammer", sender=sender, tag=tag)
                count += 1
            received.append(count)

        drainers = [
            threading.Thread(target=drain, args=(recipient, sender, tag))
            for sender, recipient, tag in lanes
        ]
        for thread in drainers:
            thread.start()
        for thread in drainers:
            thread.join()
        assert received == [per_lane] * 4
        net.assert_drained()


class TestParallelService:
    """Ingest/retire epochs under the parallel policy: the PR 4
    differential machinery re-targeted at the worker-pool schedule."""

    def _partitions(self):
        return {
            "A": DataMatrix(
                SCHEMA,
                [
                    [34, 1.25, "ACGTAC", "istanbul"],
                    [71, 9.5, "TTTTGG", "ankara"],
                    [36, 1.5, "ACGTTC", "istanbul"],
                ],
            ),
            "B": DataMatrix(
                SCHEMA,
                [
                    [38, 1.0, "ACGAAC", "izmir"],
                    [67, 9.12, "TTCTGG", "ankara"],
                ],
            ),
        }

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_mixed_history_matches_rebuild(self, workers):
        config = _config("parallel", workers, master_seed=41)
        service = ClusteringService(config, self._partitions())
        service.ingest(
            {
                "A": DataMatrix(SCHEMA, [[50, 5.0, "ACGTGG", "bursa"]]),
                "B": DataMatrix(
                    SCHEMA,
                    [[41, 2.25, "ACGTAT", "istanbul"], [70, 9.25, "TT", "ankara"]],
                ),
            },
            recluster=False,
        )
        service.retire({"A": [1], "B": [0, 2]}, recluster=False)
        published = service.ingest(
            {"A": DataMatrix(SCHEMA, [[33, 1.0, "AGGTAC", "bursa"]])}
        )
        rebuild = ClusteringSession(config, service.partitions())
        rebuilt = rebuild.run()
        assert published.to_payload() == rebuilt.to_payload()
        assert service.matrix() == rebuild.final_matrix()
        for spec in SCHEMA:
            assert service.session.third_party.attribute_matrix(
                spec.name
            ) == rebuild.third_party.attribute_matrix(spec.name), spec.name

    def test_parallel_epochs_match_sequential_epochs(self):
        """The same mutation history under every policy lands on the same
        bits -- matrices and traffic totals."""
        services = {}
        for policy, workers in POLICIES:
            config = _config(policy, workers, master_seed=23)
            service = ClusteringService(config, self._partitions())
            service.ingest(
                {
                    "A": DataMatrix(SCHEMA, [[81, 6.5, "ACCA", "ankara"]]),
                    "B": DataMatrix(SCHEMA, [[18, 0.5, "GTGT", "bursa"]]),
                },
                recluster=False,
            )
            service.retire({"B": [1]}, recluster=False)
            services[(policy, workers)] = service
        reference = services[("sequential", 1)]
        for key, service in services.items():
            assert service.matrix() == reference.matrix(), key
            if not os.environ.get("REPRO_CHAOS_PRESET"):
                assert service.total_bytes() == reference.total_bytes(), key
