"""Tests for the symmetric channel cipher and deterministic encryption."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.detenc import DeterministicEncryptor
from repro.crypto.prng import make_prng
from repro.crypto.sym import SymmetricCipher, open_sealed, seal
from repro.exceptions import CryptoError, IntegrityError

KEY = b"k" * 32


class TestSymmetricCipher:
    def test_roundtrip(self):
        cipher = SymmetricCipher(KEY)
        sealed = cipher.seal(b"attack at dawn", make_prng(1))
        assert cipher.open(sealed) == b"attack at dawn"

    def test_empty_message(self):
        cipher = SymmetricCipher(KEY)
        assert cipher.open(cipher.seal(b"", make_prng(1))) == b""

    def test_overhead_constant(self):
        cipher = SymmetricCipher(KEY)
        for size in (0, 1, 100, 10_000):
            sealed = cipher.seal(b"x" * size, make_prng(size + 1))
            assert len(sealed) == size + SymmetricCipher.OVERHEAD

    def test_ciphertext_differs_from_plaintext(self):
        cipher = SymmetricCipher(KEY)
        plaintext = b"a" * 64
        sealed = cipher.seal(plaintext, make_prng(2))
        assert plaintext not in sealed

    def test_nonce_freshness(self):
        """Equal plaintexts seal to different wires (fresh nonces)."""
        cipher = SymmetricCipher(KEY)
        entropy = make_prng(3)
        assert cipher.seal(b"same", entropy) != cipher.seal(b"same", entropy)

    @pytest.mark.parametrize("position", [0, 10, 20, 45])
    def test_tamper_detected(self, position):
        cipher = SymmetricCipher(KEY)
        sealed = bytearray(cipher.seal(b"x" * 32, make_prng(4)))
        sealed[position] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.open(bytes(sealed))

    def test_truncation_detected(self):
        cipher = SymmetricCipher(KEY)
        sealed = cipher.seal(b"hello", make_prng(5))
        with pytest.raises(IntegrityError):
            cipher.open(sealed[: SymmetricCipher.OVERHEAD - 1])

    def test_wrong_key_rejected(self):
        sealed = SymmetricCipher(KEY).seal(b"secret", make_prng(6))
        with pytest.raises(IntegrityError):
            SymmetricCipher(b"w" * 32).open(sealed)

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            SymmetricCipher(b"short")

    def test_one_shot_helpers(self):
        sealed = seal(KEY, b"msg", make_prng(7))
        assert open_sealed(KEY, sealed) == b"msg"

    @given(data=st.binary(max_size=2048))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, data):
        cipher = SymmetricCipher(KEY)
        assert cipher.open(cipher.seal(data, make_prng(len(data)))) == data


class TestDeterministicEncryptor:
    def test_determinism(self):
        enc = DeterministicEncryptor(KEY)
        assert enc.encrypt("city", "red") == enc.encrypt("city", "red")

    def test_value_separation(self):
        enc = DeterministicEncryptor(KEY)
        assert enc.encrypt("city", "red") != enc.encrypt("city", "blue")

    def test_attribute_scoping(self):
        """Equal values in different columns must not be linkable."""
        enc = DeterministicEncryptor(KEY)
        assert enc.encrypt("city", "red") != enc.encrypt("team", "red")

    def test_key_separation(self):
        a = DeterministicEncryptor(b"a" * 32)
        b = DeterministicEncryptor(b"b" * 32)
        assert a.encrypt("c", "v") != b.encrypt("c", "v")

    def test_ciphertext_size(self):
        for size in (8, 16, 32):
            enc = DeterministicEncryptor(KEY, digest_size=size)
            assert enc.ciphertext_size == size
            assert len(enc.encrypt("a", "v")) == size

    @pytest.mark.parametrize("bad", [4, 33, 0])
    def test_bad_digest_size(self, bad):
        with pytest.raises(CryptoError):
            DeterministicEncryptor(KEY, digest_size=bad)

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            DeterministicEncryptor(b"tiny")

    def test_column_encryption(self):
        enc = DeterministicEncryptor(KEY)
        column = ["x", "y", "x"]
        out = enc.encrypt_column("attr", column)
        assert len(out) == 3
        assert out[0] == out[2] != out[1]

    def test_equality_helper(self):
        enc = DeterministicEncryptor(KEY)
        assert DeterministicEncryptor.equal(
            enc.encrypt("a", "v"), enc.encrypt("a", "v")
        )
        assert not DeterministicEncryptor.equal(
            enc.encrypt("a", "v"), enc.encrypt("a", "w")
        )

    @given(value=st.text(max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_property_injective_on_samples(self, value):
        """Distinct values map to distinct ciphertexts (collision would
        need a SHA-256 birthday event)."""
        enc = DeterministicEncryptor(KEY)
        other = value + "x"
        assert enc.encrypt("attr", value) != enc.encrypt("attr", other)
