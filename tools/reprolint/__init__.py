"""reprolint -- the repo's own static-analysis suite.

The equivalence tests and hypothesis hammers enforce the DESIGN.md hard
invariants *dynamically*: they catch a violation after it runs.  This
package enforces the statically checkable half of those invariants at
lint time, before anything runs:

* **RL1xx determinism** -- no ambient randomness or wall-clock reads
  inside the protocol layers; PRNGs flow through the labeled-seed
  derivation APIs.
* **RL2xx secrecy** -- secret-named values (seeds, keys, shared
  secrets, payloads) never flow into logging, ``print``, exception
  messages or ``__repr__``.
* **RL3xx lock discipline** -- attributes annotated ``# guarded-by:
  <lock>`` are only written inside a ``with <lock>`` block.
* **RL4xx reference coverage** -- every public function of a vectorized
  "fast" module keeps a named counterpart in its ``reference`` sibling
  (the executable specification).
* **RL5xx serialization boundary** -- raw byte packing stays inside the
  wire codec and the crypto layer.

Run ``python -m reprolint --list-rules`` for the full catalogue, or
``python -m reprolint src tests benchmarks`` to lint the tree with the
configuration in ``pyproject.toml`` (``[tool.reprolint]``).

Everything here is stdlib-only (``ast`` + ``tokenize`` + ``tomllib``);
the package never imports the code under analysis.
"""

from __future__ import annotations

from reprolint.config import Config, load_config
from reprolint.engine import lint_paths
from reprolint.findings import Finding

__version__ = "1.0.0"

__all__ = ["Config", "Finding", "__version__", "lint_paths", "load_config"]
