"""RL2xx -- secrecy taint: secrets stay out of human-readable output.

Flow-insensitive by design: the lint tracks *names*, not values.  An
identifier whose name carries a secret token (``seed``, ``key``,
``secret``, ``payload``, ...) may never appear inside a logging call, a
``print``, a raised exception's message or a ``__repr__`` return.  The
discipline this buys is the reviewable one: code that wants to show a
payload-derived *harmless* scalar must first bind it to an honestly
named variable (``old_size = int(message.payload["old_size"])``), and
code that genuinely needs the name suppresses with a written
justification.  That is exactly how leakage-conscious protocol designs
treat "what escapes the protocol" -- as a property declared per site,
never an accident.
"""

from __future__ import annotations

import ast
from pathlib import Path

from reprolint.config import Config
from reprolint.findings import Finding
from reprolint.rules.base import Module, RuleFamily, finding, name_tokens

#: Wrappers whose result reveals only structure, never content.
_SANITIZERS = {"type", "len", "id", "isinstance", "bool"}

_LOG_METHODS = {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
_LOGGER_NAMES = {"logging", "logger", "log"}


def _secret_nodes(module: Module, root: ast.AST, config: Config):
    """Yield (node, identifier) for secret-named expressions under ``root``."""
    tokens = set(config.secret_tokens)
    safe_attrs = set(config.secrecy_safe_attrs)
    safe_names = set(config.secrecy_safe_names)
    for node in ast.walk(root):
        if isinstance(node, ast.Name):
            identifier = node.id
        elif isinstance(node, ast.Attribute):
            identifier = node.attr
        else:
            continue
        if identifier in safe_names or not (name_tokens(identifier) & tokens):
            continue
        skip = False
        previous: ast.AST = node
        for anc in module.ancestors(node):
            # `secret.pair` / `prng.draws`: accessing a declared-safe
            # structural attribute of a secret object is fine.
            if (
                isinstance(anc, ast.Attribute)
                and anc.value is previous
                and anc.attr in safe_attrs
            ):
                skip = True
                break
            # `type(seed).__name__` / `len(key)`: sanitizing wrappers.
            if (
                isinstance(anc, ast.Call)
                and isinstance(anc.func, ast.Name)
                and anc.func.id in _SANITIZERS
            ):
                skip = True
                break
            if anc is root:
                break
            previous = anc
        if not skip:
            yield node, identifier


def _is_print_call(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Name) and node.func.id == "print"


def _is_logging_call(module: Module, node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS):
        return False
    resolved = module.resolve(func.value)
    if resolved is None:
        return False
    head = resolved.split(".")[0]
    tail = resolved.split(".")[-1]
    return head in _LOGGER_NAMES or tail in _LOGGER_NAMES or head == "logging"


def _dataclass_decorated(module: Module, node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        resolved = module.resolve(target) or ""
        if resolved in {"dataclass", "dataclasses.dataclass"}:
            return True
    return False


def _field_hides_repr(value: ast.AST | None) -> bool:
    """Whether an assigned default is ``field(..., repr=False)``."""
    if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)):
        return False
    if value.func.id != "field":
        return False
    for keyword in value.keywords:
        if keyword.arg == "repr" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return False


class SecrecyRules(RuleFamily):
    rules = ("RL201", "RL202", "RL203", "RL204")

    @classmethod
    def run(cls, module: Module, config: Config, root: Path) -> list[Finding]:
        if not config.in_protocol_scope(module.rel):
            return []
        out: list[Finding] = []

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and (
                _is_print_call(node) or _is_logging_call(module, node)
            ):
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    for leak, identifier in _secret_nodes(module, arg, config):
                        out.append(
                            finding(
                                module, leak, "RL201",
                                f"secret-named `{identifier}` flows into "
                                "logging/print; log a kind/fingerprint instead",
                            )
                        )

            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                roots = (
                    [*exc.args, *[k.value for k in exc.keywords]]
                    if isinstance(exc, ast.Call)
                    else [exc]
                )
                for arg in roots:
                    for leak, identifier in _secret_nodes(module, arg, config):
                        out.append(
                            finding(
                                module, leak, "RL202",
                                f"secret-named `{identifier}` interpolated into "
                                "an exception message; exceptions cross trust "
                                "boundaries (logs, snapshots, bug reports)",
                            )
                        )

            elif isinstance(node, ast.FunctionDef) and node.name in {
                "__repr__",
                "__str__",
                "__format__",
            }:
                for stmt in ast.walk(node):
                    if isinstance(stmt, ast.Return) and stmt.value is not None:
                        for leak, identifier in _secret_nodes(
                            module, stmt.value, config
                        ):
                            out.append(
                                finding(
                                    module, leak, "RL203",
                                    f"secret-named `{identifier}` flows into "
                                    f"{node.name}; reprs must carry structure, "
                                    "never material",
                                )
                            )

            elif isinstance(node, ast.ClassDef) and _dataclass_decorated(module, node):
                safe_names = set(config.secrecy_safe_names)
                for stmt in node.body:
                    if not (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                    ):
                        continue
                    field_name = stmt.target.id
                    if field_name.startswith("_") or field_name in safe_names:
                        continue
                    if not (name_tokens(field_name) & set(config.secret_tokens)):
                        continue
                    if not _field_hides_repr(stmt.value):
                        out.append(
                            finding(
                                module, stmt, "RL204",
                                f"dataclass field `{field_name}` carries a "
                                "secret-token name; declare it "
                                "field(repr=False) so the auto-repr cannot "
                                "leak it",
                            )
                        )
        return out
