"""RL5xx -- serialization and transport boundaries.

The wire codec (``network/serialization.py``) is the single source of
wire bytes: the golden-transcript suite pins its output, and the
byte-accounting benchmarks assume every frame went through it.  A
stray ``struct.pack`` or ``int.to_bytes`` in a feature module creates a
second, unpinned byte layout; ``pickle`` additionally executes
arbitrary code on load, which no honest-but-curious threat model
survives.  So raw byte packing is an error everywhere except the codec
itself and the crypto layer (whose primitives *define* byte strings)
-- that is RL501.

RL502 draws the same line one layer up: sockets and event loops belong
to the transport layer (``network/``).  Protocol code that opens its
own socket bypasses the transcript accounting, the liveness machinery
and the fault injection that make socket runs comparable to simulator
runs, so ``socket``/``asyncio``/``selectors`` imports are errors in
``src/`` outside ``socket_allowed``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from reprolint.config import Config
from reprolint.findings import Finding
from reprolint.rules.base import Module, RuleFamily, finding

_BANNED_MODULES = {"struct", "pickle", "marshal", "shelve"}
_BYTE_METHODS = {"to_bytes", "from_bytes"}
_SOCKET_MODULES = {"socket", "asyncio", "selectors"}


class SerializationBoundaryRules(RuleFamily):
    rules = ("RL501", "RL502")

    @classmethod
    def run(cls, module: Module, config: Config, root: Path) -> list[Finding]:
        # The boundaries apply to library code; tests may craft malformed
        # frames or drive transports directly, so only src-rooted files
        # are in scope.
        if not module.rel.startswith("src/"):
            return []
        check_bytes = not config.path_in(module.rel, config.serialization_allowed)
        check_sockets = not config.path_in(module.rel, config.socket_allowed)
        if not (check_bytes or check_sockets):
            return []
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if check_bytes and top in _BANNED_MODULES:
                        out.append(cls._module_finding(module, node, alias.name))
                    if check_sockets and top in _SOCKET_MODULES:
                        out.append(cls._socket_finding(module, node, alias.name))
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                top = node.module.split(".")[0]
                if check_bytes and top in _BANNED_MODULES:
                    out.append(cls._module_finding(module, node, node.module))
                if check_sockets and top in _SOCKET_MODULES:
                    out.append(cls._socket_finding(module, node, node.module))
            elif isinstance(node, ast.Call) and check_bytes:
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _BYTE_METHODS:
                    out.append(
                        finding(
                            module, node, "RL501",
                            f"raw `{func.attr}` call outside the wire codec; "
                            "route bytes through network/serialization.py "
                            "(or keep the primitive inside crypto/)",
                        )
                    )
        return out

    @staticmethod
    def _module_finding(module: Module, node: ast.AST, name: str) -> Finding:
        return finding(
            module, node, "RL501",
            f"`{name}` import outside the wire codec; the codec is the "
            "single source of wire bytes (and pickle executes code on load)",
        )

    @staticmethod
    def _socket_finding(module: Module, node: ast.AST, name: str) -> Finding:
        return finding(
            module, node, "RL502",
            f"`{name}` import outside the transport layer; sockets and "
            "event loops live in network/ (use a Transport, or add the "
            "path to socket_allowed with a justification)",
        )
