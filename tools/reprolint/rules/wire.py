"""RL5xx -- serialization boundary.

The wire codec (``network/serialization.py``) is the single source of
wire bytes: the golden-transcript suite pins its output, and the
byte-accounting benchmarks assume every frame went through it.  A
stray ``struct.pack`` or ``int.to_bytes`` in a feature module creates a
second, unpinned byte layout; ``pickle`` additionally executes
arbitrary code on load, which no honest-but-curious threat model
survives.  So raw byte packing is an error everywhere except the codec
itself and the crypto layer (whose primitives *define* byte strings).
"""

from __future__ import annotations

import ast
from pathlib import Path

from reprolint.config import Config
from reprolint.findings import Finding
from reprolint.rules.base import Module, RuleFamily, finding

_BANNED_MODULES = {"struct", "pickle", "marshal", "shelve"}
_BYTE_METHODS = {"to_bytes", "from_bytes"}


class SerializationBoundaryRules(RuleFamily):
    rules = ("RL501",)

    @classmethod
    def run(cls, module: Module, config: Config, root: Path) -> list[Finding]:
        # The boundary applies to library code; tests may craft malformed
        # frames, so only src-rooted files are in scope.
        if not module.rel.startswith("src/"):
            return []
        if config.path_in(module.rel, config.serialization_allowed):
            return []
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in _BANNED_MODULES:
                        out.append(cls._module_finding(module, node, alias.name))
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                if node.module.split(".")[0] in _BANNED_MODULES:
                    out.append(cls._module_finding(module, node, node.module))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _BYTE_METHODS:
                    out.append(
                        finding(
                            module, node, "RL501",
                            f"raw `{func.attr}` call outside the wire codec; "
                            "route bytes through network/serialization.py "
                            "(or keep the primitive inside crypto/)",
                        )
                    )
        return out

    @staticmethod
    def _module_finding(module: Module, node: ast.AST, name: str) -> Finding:
        return finding(
            module, node, "RL501",
            f"`{name}` import outside the wire codec; the codec is the "
            "single source of wire bytes (and pickle executes code on load)",
        )
