"""RL503 -- matrix storage boundary.

The condensed storage backend (``distance/store.py``) is the single
owner of matrix bytes on disk: its shard layout is pinned by the
conformance suite, its LRU/writeback discipline is what makes the
n=50k runs fit the RSS gates, and its finalizers are what guarantee
shard directories are reclaimed.  A feature module that opens its own
``np.memmap`` (or mmaps a file by hand) creates a second, unmanaged
mapping: it escapes the cache budget, never flushes through the dirty
set, and leaks shards past the owner's lifetime.  So ``mmap`` imports
and ``memmap`` constructions are errors in ``src/`` outside
``matrix_storage_allowed`` -- route matrix I/O through a
:class:`~repro.distance.store.CondensedStore`.
"""

from __future__ import annotations

import ast
from pathlib import Path

from reprolint.config import Config
from reprolint.findings import Finding
from reprolint.rules.base import Module, RuleFamily, finding

_MMAP_MODULES = {"mmap"}
_MEMMAP_ATTRS = {"memmap"}


class StorageBoundaryRules(RuleFamily):
    rules = ("RL503",)

    @classmethod
    def run(cls, module: Module, config: Config, root: Path) -> list[Finding]:
        # The boundary applies to library code; tests may inspect shard
        # files directly, so only src-rooted files are in scope.
        if not module.rel.startswith("src/"):
            return []
        if config.path_in(module.rel, config.matrix_storage_allowed):
            return []
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in _MMAP_MODULES:
                        out.append(cls._mmap_finding(module, node, alias.name))
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                if node.module.split(".")[0] in _MMAP_MODULES:
                    out.append(cls._mmap_finding(module, node, node.module))
            elif isinstance(node, ast.Attribute) and node.attr in _MEMMAP_ATTRS:
                out.append(
                    finding(
                        module, node, "RL503",
                        "`memmap` use outside the storage backend; matrix "
                        "bytes on disk belong to distance/store.py (use a "
                        "CondensedStore, or add the path to "
                        "matrix_storage_allowed with a justification)",
                    )
                )
        return out

    @staticmethod
    def _mmap_finding(module: Module, node: ast.AST, name: str) -> Finding:
        return finding(
            module, node, "RL503",
            f"`{name}` import outside the storage backend; memory-mapped "
            "matrix I/O lives in distance/store.py (use a CondensedStore, "
            "or add the path to matrix_storage_allowed with a "
            "justification)",
        )
