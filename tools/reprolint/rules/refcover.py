"""RL4xx -- reference-equivalence coverage.

The vectorized "fast" modules are only trustworthy because their scalar
originals survive as executable specifications (``core/reference.py``,
``crypto/reference.py``, ``clustering/reference.py``) and equivalence
suites compare the two.  This rule keeps that pairing structural:
every public function of a fast module must have a counterpart *named*
in its reference sibling -- the same name, or ``reference_<name>`` /
``scalar_<name>`` -- or an explicit allowlist entry in
``[tool.reprolint.reference_allowlist]`` whose pyproject comment says
why no spec is needed.  A vectorized rewrite can therefore never
silently drop its spec.
"""

from __future__ import annotations

import ast
from pathlib import Path

from reprolint.config import Config
from reprolint.findings import Finding
from reprolint.rules.base import Module, RuleFamily, finding

_SKIP_DECORATORS = {"property", "cached_property", "overload", "abstractmethod"}


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _public_functions(tree: ast.Module):
    """Yield (display name, node) for the module's public surface.

    Top-level public functions, and public methods of public classes
    (dunders and properties excluded -- a repr needs no spec).
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_") and not (
                _decorator_names(node) & _SKIP_DECORATORS
            ):
                yield node.name, node
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and not item.name.startswith("_")
                    and not (_decorator_names(item) & _SKIP_DECORATORS)
                ):
                    yield f"{node.name}.{item.name}", item


def _defined_names(tree: ast.Module) -> set[str]:
    """Every function/class name defined anywhere in a module."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }


class ReferenceCoverageRules(RuleFamily):
    rules = ("RL401", "RL402")

    @classmethod
    def run(cls, module: Module, config: Config, root: Path) -> list[Finding]:
        reference_rel = config.reference_pairs.get(module.rel)
        if reference_rel is None:
            return []
        out: list[Finding] = []
        reference_path = root / reference_rel
        try:
            reference_names = _defined_names(
                ast.parse(reference_path.read_text(encoding="utf-8"))
            )
        except (OSError, SyntaxError):
            out.append(
                Finding(
                    path=module.rel, line=1, col=0, rule="RL401",
                    message=f"reference sibling {reference_rel!r} is missing "
                    "or unparsable; the fast module has no executable spec",
                )
            )
            return out

        allowlist = set(config.reference_allowlist.get(module.rel, ()))
        seen_public: set[str] = set()
        for display, node in _public_functions(module.tree):
            bare = display.rsplit(".", 1)[-1]
            seen_public.update({display, bare})
            candidates = {bare, f"reference_{bare}", f"scalar_{bare}"}
            if candidates & reference_names:
                continue
            if display in allowlist or bare in allowlist:
                continue
            out.append(
                finding(
                    module, node, "RL401",
                    f"public `{display}` has no counterpart in "
                    f"{reference_rel} (looked for {sorted(candidates)}) and "
                    "no reference_allowlist entry",
                )
            )
        for entry in sorted(allowlist):
            if entry not in seen_public:
                out.append(
                    Finding(
                        path=module.rel, line=1, col=0, rule="RL402",
                        message=f"reference_allowlist entry {entry!r} matches "
                        "no public function of this module; delete the stale "
                        "entry",
                    )
                )
        return out
