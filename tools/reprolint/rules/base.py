"""Shared machinery for rule families.

A :class:`Module` bundles everything a rule needs about one file: the
parsed tree, a lazily built child->parent map (stdlib ``ast`` has no
parent links), the comment table (``ast`` drops comments; we recover
them with ``tokenize``) and the import alias table.  Rule families are
stateless classes with a single ``run`` classmethod so the engine can
treat them uniformly.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from reprolint.config import Config
from reprolint.findings import Finding


@dataclass
class Module:
    """One parsed source file plus derived lookup tables."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    #: line number -> comment text (with the leading ``#`` stripped).
    comments: dict[int, str] = field(default_factory=dict)
    _parents: dict[ast.AST, ast.AST] | None = None
    _imports: dict[str, str] | None = None

    @classmethod
    def parse(cls, path: Path, rel: str, source: str) -> "Module":
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, rel=rel, source=source, tree=tree, comments=extract_comments(source))

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def ancestors(self, node: ast.AST):
        """Yield ``node``'s ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    @property
    def imports(self) -> dict[str, str]:
        """Binding name -> fully qualified imported name.

        ``import numpy as np`` yields ``{"np": "numpy"}``; ``from os
        import urandom`` yields ``{"urandom": "os.urandom"}``.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = alias.name
                elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                    for alias in node.names:
                        table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    def resolve(self, node: ast.AST) -> str | None:
        """Fully qualified dotted name of an expression, if statically known.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` given ``import numpy as np``.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        qualified = self.imports.get(current.id, current.id)
        return ".".join([qualified, *reversed(parts)])


def extract_comments(source: str) -> dict[int, str]:
    """Map line numbers to comment text, via ``tokenize`` (so ``#``
    inside string literals is never mistaken for a comment)."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse
        pass  # errors surface as RL003 from the engine's ast.parse
    return comments


def name_tokens(identifier: str) -> set[str]:
    """Lower-case word tokens of an identifier (``sealedKeyBytes`` and
    ``sealed_key_bytes`` both contain ``key``)."""
    words: list[str] = []
    current = ""
    for char in identifier:
        if char == "_":
            if current:
                words.append(current)
            current = ""
        elif char.isupper() and current and not current[-1].isupper():
            words.append(current)
            current = char
        else:
            current += char
    if current:
        words.append(current)
    return {word.lower() for word in words if word}


def enclosing_functions(module: Module, node: ast.AST) -> list[ast.AST]:
    """Function definitions containing ``node``, innermost first."""
    return [
        anc
        for anc in module.ancestors(node)
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def finding(
    module: Module, node: ast.AST, rule: str, message: str
) -> Finding:
    return Finding(
        path=module.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
    )


class RuleFamily:
    """Base class: a family inspects one module and emits findings."""

    #: Rule IDs this family can emit (pinned by the self-tests).
    rules: tuple[str, ...] = ()

    @classmethod
    def run(cls, module: Module, config: Config, root: Path) -> list[Finding]:
        raise NotImplementedError
