"""RL1xx -- determinism inside the protocol layers.

The protocol layers (``core/``, ``crypto/``, ``network/``,
``parties/``) must be bit-reproducible functions of their seeds and
inputs: wire transcripts are golden-pinned, and every schedule/worker
count must produce identical bytes (DESIGN.md invariants 1, 2, 5, 6).
Ambient randomness, wall-clock reads and unordered iteration are the
three ways a change silently breaks that, so all three are banned here
at lint time.
"""

from __future__ import annotations

import ast
from pathlib import Path

from reprolint.config import Config
from reprolint.findings import Finding
from reprolint.rules.base import Module, RuleFamily, finding

#: time-module attributes that read the wall clock (or block on it).
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
}

_DATETIME_CALLS = {
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_OS_ENTROPY = {"os.urandom", "os.getrandom"}
_UUID_CALLS = {"uuid.uuid1", "uuid.uuid4"}

#: Constructors/factories of :mod:`repro.crypto.prng`.  Everything else
#: must mint generators through the labeled derivation APIs
#: (``PairwiseSecret.prng(label)`` / ``derive_seed``), so no module can
#: invent a stream that escapes the label-uniqueness argument.
_PRNG_CONSTRUCTORS = {"Lcg64", "XorShift64Star", "HashDRBG", "make_prng"}

#: Calls that realize an iteration order from their first argument.
_ORDER_REALIZING_CALLS = {"list", "tuple", "enumerate", "iter", "max", "min"}


def _is_set_expr(module: Module, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"} and node.func.id not in module.imports
    return False


class DeterminismRules(RuleFamily):
    rules = ("RL101", "RL102", "RL103", "RL104", "RL105", "RL106")

    @classmethod
    def run(cls, module: Module, config: Config, root: Path) -> list[Finding]:
        if not config.in_protocol_scope(module.rel):
            return []
        out: list[Finding] = []
        prng_allowed = config.path_in(module.rel, config.prng_construction_allowed)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "random":
                        out.append(
                            finding(
                                module, node, "RL101",
                                "stdlib `random` is seeded from global state; "
                                "use a labeled ReseedablePRNG",
                            )
                        )
                    elif top == "secrets":
                        out.append(
                            finding(
                                module, node, "RL104",
                                "`secrets` draws ambient OS entropy; protocol "
                                "randomness must come from shared labeled seeds",
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                top = node.module.split(".")[0]
                if top == "random":
                    out.append(
                        finding(
                            module, node, "RL101",
                            "stdlib `random` is seeded from global state; "
                            "use a labeled ReseedablePRNG",
                        )
                    )
                elif node.module == "numpy.random" or (
                    top == "numpy" and any(a.name == "random" for a in node.names)
                ):
                    out.append(
                        finding(
                            module, node, "RL102",
                            "numpy random state is process-global; derive a "
                            "ReseedablePRNG from a labeled seed instead",
                        )
                    )
                elif top == "secrets":
                    out.append(
                        finding(
                            module, node, "RL104",
                            "`secrets` draws ambient OS entropy; protocol "
                            "randomness must come from shared labeled seeds",
                        )
                    )

            elif isinstance(node, ast.Attribute):
                resolved = module.resolve(node)
                if resolved is None:
                    continue
                if resolved.startswith("numpy.random"):
                    # Flag only the outermost attribute of a chain, so
                    # `np.random.rand` yields one finding, not two.
                    parent = module.parents.get(node)
                    if isinstance(parent, ast.Attribute) and (
                        module.resolve(parent) or ""
                    ).startswith("numpy.random"):
                        continue
                    out.append(
                        finding(
                            module, node, "RL102",
                            f"`{resolved}` is process-global random state; "
                            "derive a ReseedablePRNG from a labeled seed",
                        )
                    )
                elif resolved in _CLOCK_CALLS or resolved in _DATETIME_CALLS:
                    out.append(
                        finding(
                            module, node, "RL103",
                            f"`{resolved}` reads the wall clock; protocol "
                            "output must be a function of seeds and inputs only",
                        )
                    )
                elif resolved in _OS_ENTROPY or resolved in _UUID_CALLS:
                    out.append(
                        finding(
                            module, node, "RL104",
                            f"`{resolved}` draws ambient OS entropy; protocol "
                            "randomness must come from shared labeled seeds",
                        )
                    )

            elif isinstance(node, ast.Call):
                func = node.func
                last = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else None
                )
                if last in _PRNG_CONSTRUCTORS and not prng_allowed:
                    out.append(
                        finding(
                            module, node, "RL106",
                            f"direct `{last}(...)` call; protocol PRNGs must "
                            "flow through the labeled-seed derivation APIs "
                            "(PairwiseSecret.prng / derive_seed)",
                        )
                    )
                # Calls that realize an unordered iteration order.
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_REALIZING_CALLS
                    and node.args
                    and _is_set_expr(module, node.args[0])
                ):
                    out.append(cls._unordered(module, node.args[0]))
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and _is_set_expr(module, node.args[0])
                ):
                    out.append(cls._unordered(module, node.args[0]))

            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(module, node.iter):
                    out.append(cls._unordered(module, node.iter))
            elif isinstance(node, ast.comprehension):
                if _is_set_expr(module, node.iter):
                    out.append(cls._unordered(module, node.iter))
        return out

    @staticmethod
    def _unordered(module: Module, node: ast.AST) -> Finding:
        return finding(
            module, node, "RL105",
            "iterating a set realizes a hash-order-dependent sequence; "
            "wrap it in sorted(...) before it can reach protocol output",
        )
