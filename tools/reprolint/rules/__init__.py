"""Rule families, in catalogue order."""

from __future__ import annotations

from reprolint.rules.determinism import DeterminismRules
from reprolint.rules.locks import LockDisciplineRules
from reprolint.rules.refcover import ReferenceCoverageRules
from reprolint.rules.secrecy import SecrecyRules
from reprolint.rules.storage import StorageBoundaryRules
from reprolint.rules.wire import SerializationBoundaryRules

#: Every family the engine runs, in reporting order.
ALL_FAMILIES = (
    DeterminismRules,
    SecrecyRules,
    LockDisciplineRules,
    ReferenceCoverageRules,
    SerializationBoundaryRules,
    StorageBoundaryRules,
)

__all__ = [
    "ALL_FAMILIES",
    "DeterminismRules",
    "LockDisciplineRules",
    "ReferenceCoverageRules",
    "SecrecyRules",
    "SerializationBoundaryRules",
    "StorageBoundaryRules",
]
