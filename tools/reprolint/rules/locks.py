"""RL3xx -- declarative lock discipline.

Shared mutable attributes are declared with an annotation comment on
their ``__init__`` assignment::

    #: guards delivery state
    # guarded-by: self._registry_lock | self._locks[*]
    self._lanes: dict[...] = {}

The checker then proves, lexically, that every *write* to the attribute
-- rebinding, item assignment, ``del``, or a mutating method call such
as ``.append``/``.setdefault``, including through local aliases
(``lanes = self._lanes[r]; lanes.popleft()``) -- happens inside a
``with <lock>:`` block matching one of the declared locks.  ``[*]``
matches any subscript of a lock table (``with self._locks[recipient]:``).

Two escape hatches, both visible in the diff: writes inside
``__init__``/``__post_init__`` are exempt (the object has not escaped
its constructor), and methods whose name ends in ``_locked`` are exempt
(the suffix is the documented contract that the caller holds the lock).
Reads are deliberately unchecked -- the protocol argument for lock-free
reads (disjoint blocks, setup-phase-only registration) lives in the
code; this rule pins the write side, which is where lost updates come
from.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from reprolint.config import Config
from reprolint.findings import Finding
from reprolint.rules.base import Module, RuleFamily

_ANNOTATION = re.compile(r"guarded-by:\s*(.+)$")
_SPEC = re.compile(r"^self\.(\w+)(\[\*\])?$")

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

_CTOR_METHODS = {"__init__", "__post_init__"}


@dataclass(frozen=True)
class LockSpec:
    """One alternative of a guarded-by annotation."""

    attr: str
    wildcard: bool

    def render(self) -> str:
        return f"self.{self.attr}[*]" if self.wildcard else f"self.{self.attr}"

    def matches(self, expr: ast.AST) -> bool:
        if self.wildcard:
            if not isinstance(expr, ast.Subscript):
                return False
            expr = expr.value
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr == self.attr
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        )


def _expression_base(expr: ast.AST) -> tuple[str, str] | None:
    """Root of an access chain: ``("self", attr)`` or ``("name", id)``.

    ``self._raw[k].method(...)`` roots at ``("self", "_raw")``;
    ``lanes.get(k)`` roots at ``("name", "lanes")``.
    """
    while True:
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return ("self", expr.attr)
            expr = expr.value
        elif isinstance(expr, (ast.Subscript, ast.Starred)):
            expr = expr.value
        elif isinstance(expr, ast.Call):
            expr = expr.func
        elif isinstance(expr, ast.Name):
            return ("name", expr.id)
        else:
            return None


class LockDisciplineRules(RuleFamily):
    rules = ("RL301", "RL302")

    @classmethod
    def run(cls, module: Module, config: Config, root: Path) -> list[Finding]:
        out: list[Finding] = []
        for classdef in ast.walk(module.tree):
            if isinstance(classdef, ast.ClassDef):
                out.extend(cls._check_class(module, classdef))
        return out

    # -- per class ---------------------------------------------------------

    @classmethod
    def _check_class(cls, module: Module, classdef: ast.ClassDef) -> list[Finding]:
        guarded: dict[str, list[LockSpec]] = {}
        annotation_lines: dict[str, int] = {}
        assigned_attrs: set[str] = set()
        findings: list[Finding] = []

        for node in ast.walk(classdef):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        assigned_attrs.add(target.attr)
                        specs = cls._annotation_at(module, node.lineno)
                        if specs is not None:
                            guarded[target.attr] = specs
                            annotation_lines[target.attr] = node.lineno

        if not guarded:
            return findings

        for attr, specs in guarded.items():
            line = annotation_lines[attr]
            if not specs:
                findings.append(
                    Finding(
                        path=module.rel, line=line, col=0, rule="RL302",
                        message=f"malformed guarded-by annotation on `{attr}`: "
                        "expected `self.<lock>` or `self.<locks>[*]`, "
                        "alternatives separated by `|`",
                    )
                )
                continue
            for spec in specs:
                if spec.attr not in assigned_attrs:
                    findings.append(
                        Finding(
                            path=module.rel, line=line, col=0, rule="RL302",
                            message=f"guarded-by on `{attr}` names "
                            f"`{spec.render()}`, but the class never assigns "
                            f"`self.{spec.attr}`",
                        )
                    )

        for method in classdef.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _CTOR_METHODS or method.name.endswith("_locked"):
                continue
            findings.extend(cls._check_method(module, method, guarded))
        return findings

    @classmethod
    def _annotation_at(cls, module: Module, lineno: int) -> list[LockSpec] | None:
        for line in (lineno, lineno - 1, lineno - 2):
            comment = module.comments.get(line)
            if comment is None:
                continue
            match = _ANNOTATION.search(comment)
            if match is None:
                continue
            specs: list[LockSpec] = []
            for part in match.group(1).split("|"):
                spec_match = _SPEC.match(part.strip())
                if spec_match is None:
                    return []  # malformed -> RL302 upstream
                specs.append(
                    LockSpec(attr=spec_match.group(1), wildcard=bool(spec_match.group(2)))
                )
            return specs
        return None

    # -- per method --------------------------------------------------------

    @classmethod
    def _check_method(
        cls,
        module: Module,
        method: ast.AST,
        guarded: dict[str, list[LockSpec]],
    ) -> list[Finding]:
        tainted = cls._alias_names(method, guarded)
        findings: list[Finding] = []

        def root_guard(expr: ast.AST) -> str | None:
            """Guarded attribute an expression's base resolves to."""
            base = _expression_base(expr)
            if base is None:
                return None
            kind, name = base
            if kind == "self" and name in guarded:
                return name
            if kind == "name" and name in tainted:
                return tainted[name]
            return None

        def check_write(site: ast.AST, target: ast.AST) -> None:
            # `columns = self._raw.get(k)` rebinds a LOCAL name -- that is
            # alias creation (tracked separately), not a write to the
            # guarded object.  Only stores through a subscript/attribute
            # chain (or `self.<attr> = ...` itself) mutate shared state.
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    check_write(site, element)
                return
            if isinstance(target, ast.Name):
                return
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attr = target.attr if target.attr in guarded else None
            else:
                attr = root_guard(target)
            if attr is not None:
                cls._require_lock(module, site, attr, guarded[attr], findings)

        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    check_write(node, target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                check_write(node, node.target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    check_write(node, target)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    attr = root_guard(func.value)
                    if attr is not None:
                        cls._require_lock(module, node, attr, guarded[attr], findings)
        return findings

    @staticmethod
    def _alias_names(method: ast.AST, guarded: dict[str, list[LockSpec]]) -> dict[str, str]:
        """Local names aliasing guarded state, to the attr they alias.

        Fixpoint over assignments and for-targets so chains resolve in
        any statement order (`lanes = self._lanes[r]; lane = lanes.get(k)`).
        """
        tainted: dict[str, str] = {}

        def source_guard(expr: ast.AST) -> str | None:
            base = _expression_base(expr)
            if base is None:
                return None
            kind, name = base
            if kind == "self" and name in guarded:
                return name
            if kind == "name" and name in tainted:
                return tainted[name]
            return None

        def bind(target: ast.AST, attr: str) -> bool:
            changed = False
            if isinstance(target, ast.Name) and tainted.get(target.id) != attr:
                tainted[target.id] = attr
                changed = True
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    changed |= bind(element, attr)
            return changed

        for _ in range(8):  # alias chains are short; fixpoint converges fast
            changed = False
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    attr = source_guard(node.value)
                    if attr is not None:
                        for target in node.targets:
                            changed |= bind(target, attr)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    attr = source_guard(node.iter)
                    if attr is not None:
                        changed |= bind(node.target, attr)
                elif isinstance(node, ast.NamedExpr):
                    attr = source_guard(node.value)
                    if attr is not None:
                        changed |= bind(node.target, attr)
            if not changed:
                break
        return tainted

    @classmethod
    def _require_lock(
        cls,
        module: Module,
        site: ast.AST,
        attr: str,
        specs: list[LockSpec],
        findings: list[Finding],
    ) -> None:
        for anc in module.ancestors(site):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    if any(spec.matches(item.context_expr) for spec in specs):
                        return
        wanted = " | ".join(spec.render() for spec in specs)
        findings.append(
            Finding(
                path=module.rel,
                line=getattr(site, "lineno", 1),
                col=getattr(site, "col_offset", 0),
                rule="RL301",
                message=f"write to `{attr}` outside `with {wanted}`; the "
                "attribute is declared guarded-by that lock",
            )
        )
