"""``python -m reprolint`` dispatches to the CLI."""

from reprolint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
