"""Configuration: defaults plus the ``[tool.reprolint]`` pyproject table.

Paths in the config are repo-root-relative POSIX prefixes; a file is in
scope for a rule family when its relative path starts with one of the
family's prefixes.  The defaults encode this repository's layout so the
tool is runnable bare; the pyproject table overrides field by field.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path


def _norm_prefix(prefix: str) -> str:
    return prefix.replace("\\", "/").strip("/")


@dataclass
class Config:
    """Resolved reprolint configuration."""

    #: Lint roots used when the CLI is invoked without paths.
    paths: list[str] = field(default_factory=lambda: ["src", "tests", "benchmarks"])
    #: Path prefixes skipped entirely (the deliberate-violation corpus).
    exclude: list[str] = field(default_factory=lambda: ["tests/reprolint_fixtures"])

    #: Layers whose output is protocol-visible: determinism (RL1xx) and
    #: secrecy (RL2xx) apply here.
    protocol_paths: list[str] = field(
        default_factory=lambda: [
            "src/repro/core",
            "src/repro/crypto",
            "src/repro/network",
            "src/repro/parties",
        ]
    )
    #: Modules allowed to construct PRNGs directly (the derivation layer).
    prng_construction_allowed: list[str] = field(
        default_factory=lambda: [
            "src/repro/crypto/prng.py",
            "src/repro/crypto/keys.py",
            "src/repro/core/session.py",
            # Fault-injection schedules draw from their own labeled lane
            # streams, deliberately disjoint from protocol entropy.
            "src/repro/network/faults.py",
        ]
    )

    #: Name tokens that mark an identifier as secret-carrying.
    secret_tokens: list[str] = field(
        default_factory=lambda: [
            "secret",
            "seed",
            "key",
            "keystream",
            "plaintext",
            "passphrase",
            "payload",
            "entropy",
            "private",
            "wire",
        ]
    )
    #: Attributes of a secret-named value that are safe to show
    #: (structural metadata, never key material).
    secrecy_safe_attrs: list[str] = field(
        default_factory=lambda: ["pair", "name", "kind", "draws", "endpoints"]
    )
    #: Full identifier names exempt from secret matching (counters and
    #: lane keys whose names merely collide with secret tokens).
    secrecy_safe_names: list[str] = field(
        default_factory=lambda: [
            "payload_bytes",
            "wire_bytes",
            "best_key",
            "lane_key",
            "key_stats",
            "kind_stats",
            # A public key is public by definition; only the private half
            # is material.
            "public_key",
        ]
    )

    #: Fast module -> reference sibling (the executable specification).
    reference_pairs: dict[str, str] = field(
        default_factory=lambda: {
            "src/repro/core/numeric.py": "src/repro/core/reference.py",
            "src/repro/core/alphanumeric.py": "src/repro/core/reference.py",
            "src/repro/crypto/sym.py": "src/repro/crypto/reference.py",
            "src/repro/clustering/linkage.py": "src/repro/clustering/reference.py",
            "src/repro/clustering/kmedoids.py": "src/repro/clustering/reference.py",
            "src/repro/clustering/quality.py": "src/repro/clustering/reference.py",
        }
    )
    #: Per fast module: public names exempt from RL401 (APIs that are
    #: compositions of covered primitives, with the reason in pyproject).
    reference_allowlist: dict[str, list[str]] = field(default_factory=dict)

    #: Paths allowed to touch raw bytes (the wire codec, the crypto layer).
    serialization_allowed: list[str] = field(
        default_factory=lambda: [
            "src/repro/network/serialization.py",
            "src/repro/crypto",
        ]
    )

    #: Paths allowed to open sockets or run event loops (the transport
    #: layer).  Everything else must go through a Transport.
    socket_allowed: list[str] = field(
        default_factory=lambda: ["src/repro/network"]
    )

    #: Paths allowed to memory-map matrix shards (the condensed storage
    #: backend).  Everything else must go through a CondensedStore.
    matrix_storage_allowed: list[str] = field(
        default_factory=lambda: ["src/repro/distance/store.py"]
    )

    def __post_init__(self) -> None:
        self.paths = [_norm_prefix(p) for p in self.paths]
        self.exclude = [_norm_prefix(p) for p in self.exclude]
        self.protocol_paths = [_norm_prefix(p) for p in self.protocol_paths]
        self.prng_construction_allowed = [
            _norm_prefix(p) for p in self.prng_construction_allowed
        ]
        self.serialization_allowed = [
            _norm_prefix(p) for p in self.serialization_allowed
        ]
        self.socket_allowed = [_norm_prefix(p) for p in self.socket_allowed]
        self.matrix_storage_allowed = [
            _norm_prefix(p) for p in self.matrix_storage_allowed
        ]
        self.reference_pairs = {
            _norm_prefix(k): _norm_prefix(v) for k, v in self.reference_pairs.items()
        }
        self.reference_allowlist = {
            _norm_prefix(k): list(v) for k, v in self.reference_allowlist.items()
        }

    # -- scope helpers ----------------------------------------------------

    @staticmethod
    def path_in(rel: str, prefixes: list[str]) -> bool:
        """Whether ``rel`` (POSIX, root-relative) falls under a prefix."""
        for prefix in prefixes:
            if rel == prefix or rel.startswith(prefix + "/"):
                return True
        return False

    def is_excluded(self, rel: str) -> bool:
        return self.path_in(rel, self.exclude)

    def in_protocol_scope(self, rel: str) -> bool:
        return self.path_in(rel, self.protocol_paths)


#: Config keys accepted from pyproject; anything else is a hard error so
#: a typo cannot silently disable a rule family.
_KNOWN_KEYS = {
    "paths",
    "exclude",
    "protocol_paths",
    "prng_construction_allowed",
    "secret_tokens",
    "secrecy_safe_attrs",
    "secrecy_safe_names",
    "reference_pairs",
    "reference_allowlist",
    "serialization_allowed",
    "socket_allowed",
    "matrix_storage_allowed",
}


class ConfigError(Exception):
    """Invalid ``[tool.reprolint]`` table."""


def load_config(pyproject: Path | None) -> Config:
    """Build a :class:`Config` from ``pyproject.toml`` if present."""
    if pyproject is None or not pyproject.is_file():
        return Config()
    with open(pyproject, "rb") as handle:
        table = tomllib.load(handle).get("tool", {}).get("reprolint", {})
    unknown = sorted(set(table) - _KNOWN_KEYS)
    if unknown:
        raise ConfigError(
            f"unknown [tool.reprolint] keys {unknown}; known: {sorted(_KNOWN_KEYS)}"
        )
    return Config(**table)
