"""Finding records and the rule catalogue.

Rule IDs are a public, stable interface: suppression comments, CI
output and the DESIGN.md invariant table all refer to them, so an ID is
never renumbered or reused (``tests/test_reprolint.py`` pins the
catalogue).  New rules append within their family's hundred-block.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = field(default=False, compare=False)
    justification: str | None = field(default=None, compare=False)

    def format(self) -> str:
        tail = f"  [suppressed: {self.justification}]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tail}"


#: The complete rule catalogue: id -> one-line summary.  Hundred-blocks
#: group families; RL0xx are the linter's own hygiene rules.
RULES: dict[str, str] = {
    # -- meta / hygiene ---------------------------------------------------
    "RL001": "suppression comment is malformed or carries no justification",
    "RL002": "suppression comment matched no finding (stale suppression)",
    "RL003": "file could not be parsed as Python",
    # -- determinism ------------------------------------------------------
    "RL101": "stdlib `random` used inside a protocol layer",
    "RL102": "numpy global random state (`np.random`) inside a protocol layer",
    "RL103": "wall-clock read (`time.*` / `datetime.now`) inside a protocol layer",
    "RL104": "ambient OS entropy (`os.urandom` / `secrets` / `uuid`) inside a protocol layer",
    "RL105": "iteration over an unordered set feeds protocol-visible output",
    "RL106": "PRNG constructed outside the labeled-seed derivation APIs",
    # -- secrecy ----------------------------------------------------------
    "RL201": "secret-named value flows into logging or print",
    "RL202": "secret-named value interpolated into a raised exception message",
    "RL203": "secret-named value flows into __repr__/__str__ output",
    "RL204": "dataclass field with a secret-carrying name lacks repr=False",
    # -- lock discipline --------------------------------------------------
    "RL301": "write to a guarded attribute outside its `with <lock>` block",
    "RL302": "guarded-by annotation names a lock the class never defines",
    # -- reference-equivalence coverage -----------------------------------
    "RL401": "public function of a fast module has no reference counterpart",
    "RL402": "reference allowlist entry matches nothing in the fast module",
    # -- serialization boundary -------------------------------------------
    "RL501": "raw byte packing (`struct`/`pickle`/`to_bytes`) outside the wire codec",
    "RL502": "raw socket / event-loop usage (`socket`/`asyncio`/`selectors`) outside the transport layer",
    "RL503": "memory-mapped matrix I/O (`mmap`/`np.memmap`) outside the storage backend",
}


def is_known_rule(rule_id: str) -> bool:
    return rule_id in RULES
