"""File walking, rule dispatch and suppression bookkeeping.

Suppressions are the audited escape hatch::

    time.sleep(self.latency)  # reprolint: disable=RL103 -- models link latency, never feeds protocol output

    # reprolint: disable=RL106 -- session entropy helper IS the derivation API
    prng = make_prng(seed)

    # reprolint: disable-file=RL501 -- this module is a codec test vector

``disable=`` covers the findings on its own line (or, when the comment
stands alone, the next code line); ``disable-file=`` covers the whole
file.  Every suppression must carry a ``-- justification`` (RL001
otherwise), and a suppression that matches nothing is itself an error
(RL002) so stale escapes cannot accumulate.  Suppressed findings stay
in the report, marked, so reviewers see what was waived and why.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from reprolint.config import Config
from reprolint.findings import RULES, Finding
from reprolint.rules import ALL_FAMILIES
from reprolint.rules.base import Module, extract_comments

_SUPPRESSION = re.compile(
    r"reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*(?P<rules>[A-Za-z0-9_, ]+?)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)


@dataclass
class Suppression:
    line: int
    target_line: int
    file_wide: bool
    rules: tuple[str, ...]
    justification: str
    used: int = 0


@dataclass
class LintResult:
    root: Path
    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for item in self.active:
            counts[item.rule] = counts.get(item.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(root: Path, paths: list[str], config: Config):
    """Yield (absolute path, root-relative POSIX path) under the lint roots."""
    seen: set[Path] = set()
    for raw in paths:
        base = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if base.is_file():
            candidates = [base]
        else:
            candidates = sorted(base.rglob("*.py"))
        for candidate in candidates:
            if candidate.suffix != ".py" or candidate in seen:
                continue
            if "__pycache__" in candidate.parts:
                continue
            seen.add(candidate)
            try:
                rel = candidate.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = candidate.as_posix()
            if config.is_excluded(rel):
                continue
            yield candidate, rel


def _parse_suppressions(
    source: str, comments: dict[int, str]
) -> tuple[list[Suppression], list[Finding]]:
    """Extract suppression directives; malformed ones become RL001."""
    lines = source.splitlines()
    suppressions: list[Suppression] = []
    problems: list[Finding] = []

    def code_line_after(lineno: int) -> int:
        for offset in range(lineno + 1, len(lines) + 1):
            text = lines[offset - 1].strip()
            if text and not text.startswith("#"):
                return offset
        return lineno

    for lineno, comment in sorted(comments.items()):
        if "reprolint:" not in comment:
            continue
        match = _SUPPRESSION.search(comment)
        if match is None:
            problems.append(
                Finding(
                    path="", line=lineno, col=0, rule="RL001",
                    message="unrecognized reprolint directive; expected "
                    "`# reprolint: disable=RL### -- justification`",
                )
            )
            continue
        rule_ids = tuple(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        unknown = [rule for rule in rule_ids if rule not in RULES]
        justification = (match.group("why") or "").strip()
        if unknown or not rule_ids:
            problems.append(
                Finding(
                    path="", line=lineno, col=0, rule="RL001",
                    message=f"suppression names unknown rule IDs {unknown}; "
                    "see `python -m reprolint --list-rules`",
                )
            )
            continue
        if len(justification) < 10:
            problems.append(
                Finding(
                    path="", line=lineno, col=0, rule="RL001",
                    message="suppression carries no justification; append "
                    "` -- <why this site is exempt>` (10+ characters)",
                )
            )
            continue
        standalone = lines[lineno - 1].strip().startswith("#")
        suppressions.append(
            Suppression(
                line=lineno,
                target_line=code_line_after(lineno) if standalone else lineno,
                file_wide=match.group("kind") == "disable-file",
                rules=rule_ids,
                justification=justification,
            )
        )
    return suppressions, problems


def lint_file(path: Path, rel: str, config: Config, root: Path) -> list[Finding]:
    source = path.read_text(encoding="utf-8")
    try:
        module = Module.parse(path, rel, source)
    except SyntaxError as exc:
        return [
            Finding(
                path=rel, line=exc.lineno or 1, col=exc.offset or 0, rule="RL003",
                message=f"syntax error: {exc.msg}",
            )
        ]

    findings: list[Finding] = []
    for family in ALL_FAMILIES:
        findings.extend(family.run(module, config, root))

    suppressions, problems = _parse_suppressions(source, extract_comments(source))
    for problem in problems:
        problem.path = rel
        findings.append(problem)

    for item in findings:
        if item.rule in {"RL001", "RL002"}:
            continue  # the hygiene rules themselves are not waivable
        for suppression in suppressions:
            if item.rule not in suppression.rules:
                continue
            if suppression.file_wide or suppression.target_line == item.line:
                item.suppressed = True
                item.justification = suppression.justification
                suppression.used += 1
                break

    for suppression in suppressions:
        if not suppression.used:
            findings.append(
                Finding(
                    path=rel, line=suppression.line, col=0, rule="RL002",
                    message=f"suppression of {', '.join(suppression.rules)} "
                    "matched no finding; delete the stale directive",
                )
            )
    return findings


def lint_paths(paths: list[str], config: Config, root: Path) -> LintResult:
    result = LintResult(root=root)
    for path, rel in iter_python_files(root, paths or config.paths, config):
        result.files_scanned += 1
        result.findings.extend(lint_file(path, rel, config, root))
    result.findings.sort()
    return result
