"""Command line entry point: ``python -m reprolint [paths...]``.

Exit codes: 0 clean (suppressed findings do not fail the build), 1 when
any non-suppressed finding exists, 2 on usage or configuration errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from reprolint import __version__
from reprolint.config import ConfigError, load_config
from reprolint.engine import lint_paths
from reprolint.findings import RULES
from reprolint.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Static checks for the repo's determinism, secrecy, "
        "lock-discipline, reference-coverage and wire-boundary invariants.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: [tool.reprolint].paths)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root (default: cwd; config and relative paths "
        "resolve against it)",
    )
    parser.add_argument(
        "--config", type=Path, default=None,
        help="pyproject.toml to read [tool.reprolint] from "
        "(default: <root>/pyproject.toml)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--json-output", type=Path, default=None,
        help="also write the JSON report to this file (CI artifact)",
    )
    parser.add_argument(
        "--hide-suppressed", action="store_true",
        help="omit suppressed findings from the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument("--version", action="version", version=f"reprolint {__version__}")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, summary in sorted(RULES.items()):
            print(f"{rule_id}  {summary}")
        return 0

    root = (args.root or Path.cwd()).resolve()
    config_path = args.config or (root / "pyproject.toml")
    try:
        config = load_config(config_path)
    except ConfigError as exc:
        print(f"reprolint: configuration error: {exc}", file=sys.stderr)
        return 2

    result = lint_paths(list(args.paths), config, root)

    if args.json_output is not None:
        args.json_output.parent.mkdir(parents=True, exist_ok=True)
        args.json_output.write_text(render_json(result) + "\n", encoding="utf-8")

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=not args.hide_suppressed))

    return 1 if result.active else 0


if __name__ == "__main__":  # pragma: no cover - module is run via __main__
    raise SystemExit(main())
