"""Text and JSON reporters.

The text reporter is for humans at a terminal; the JSON reporter is the
machine interface CI archives as an artifact, so its shape (``version``,
``summary``, ``findings[]`` with stable keys) is part of the public
surface alongside the rule IDs.
"""

from __future__ import annotations

import json

from reprolint.engine import LintResult
from reprolint.findings import RULES


def render_text(result: LintResult, *, show_suppressed: bool = True) -> str:
    lines: list[str] = []
    for item in result.findings:
        if item.suppressed and not show_suppressed:
            continue
        lines.append(item.format())
    active = result.active
    summary = ", ".join(f"{rule}×{count}" for rule, count in result.summary().items())
    lines.append(
        f"reprolint: {result.files_scanned} files, "
        f"{len(active)} finding(s){f' ({summary})' if summary else ''}, "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "summary": result.summary(),
        "findings": [
            {
                "path": item.path,
                "line": item.line,
                "col": item.col,
                "rule": item.rule,
                "rule_summary": RULES.get(item.rule, ""),
                "message": item.message,
                "suppressed": item.suppressed,
                "justification": item.justification,
            }
            for item in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
